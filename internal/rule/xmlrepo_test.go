package rule

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func xmlTestRepo(t *testing.T) *Repository {
	t.Helper()
	repo := NewRepository("imdb-movies")
	runtime := validRule("runtime")
	runtime.Refine = &Refinement{Pattern: `(\d+) min`}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(repo.Record(runtime))
	lang := validRule("language")
	lang.Optionality = Optional
	must(repo.Record(lang))
	genres := validRule("genre")
	genres.Multiplicity = Multivalued
	genres.Refine = &Refinement{Split: ","}
	must(repo.Record(genres))
	must(repo.SetStructure([]StructureNode{
		{Name: "info", Children: []StructureNode{
			{Name: "runtime", Component: "runtime"},
			{Name: "language", Component: "language"},
		}},
		{Name: "genre", Component: "genre"},
	}))
	return repo
}

func TestXMLRepositoryRoundTrip(t *testing.T) {
	repo := xmlTestRepo(t)
	data, err := repo.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalRepositoryXML(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if loaded.Cluster != repo.Cluster {
		t.Errorf("cluster = %q", loaded.Cluster)
	}
	if !reflect.DeepEqual(loaded.Rules, repo.Rules) {
		t.Errorf("rules differ:\n%+v\nvs\n%+v", loaded.Rules, repo.Rules)
	}
	if !reflect.DeepEqual(loaded.Structure, repo.Structure) {
		t.Errorf("structure differs:\n%+v\nvs\n%+v", loaded.Structure, repo.Structure)
	}
}

func TestXMLRepositoryFileRoundTrip(t *testing.T) {
	repo := xmlTestRepo(t)
	path := filepath.Join(t.TempDir(), "rules.xml")
	if err := repo.SaveXML(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadXML(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Rules) != 3 {
		t.Errorf("rules = %d", len(loaded.Rules))
	}
	r, ok := loaded.Lookup("runtime")
	if !ok || r.Refine == nil || r.Refine.Pattern != `(\d+) min` {
		t.Errorf("refinement lost: %+v", r)
	}
}

func TestXMLRepositoryShape(t *testing.T) {
	repo := xmlTestRepo(t)
	data, err := repo.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`<rule-repository cluster="imdb-movies">`,
		`<mapping-rule>`,
		`<name>runtime</name>`,
		`<optionality>mandatory</optionality>`,
		`<multiplicity>single-valued</multiplicity>`,
		`<format>text</format>`,
		`<location>BODY//TR[6]/TD[1]/text()[1]</location>`,
		`<structure>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("XML missing %q:\n%s", want, s)
		}
	}
}

func TestXMLRepositoryRejectsInvalid(t *testing.T) {
	bad := []string{
		`not xml`,
		`<rule-repository cluster="9bad"></rule-repository>`,
		`<rule-repository cluster="c"><mapping-rule><name>x</name><optionality>maybe</optionality><multiplicity>single-valued</multiplicity><format>text</format><location>BODY</location></mapping-rule></rule-repository>`,
	}
	for i, s := range bad {
		if _, err := UnmarshalRepositoryXML([]byte(s)); err == nil {
			t.Errorf("bad XML %d accepted", i)
		}
	}
}

func TestJSONAndXMLEquivalence(t *testing.T) {
	repo := xmlTestRepo(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "r.json")
	xmlPath := filepath.Join(dir, "r.xml")
	if err := repo.Save(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := repo.SaveXML(xmlPath); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	fromXML, err := LoadXML(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON.Rules, fromXML.Rules) {
		t.Error("JSON and XML encodings disagree")
	}
}
