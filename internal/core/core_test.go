package core

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// moviePage builds an imdb-movies style page following Figure 4 of the
// paper. aka inserts the "Also Known As:" field before Runtime (the
// position shift of page c); rows controls the number of filler rows
// before the info row (page d uses fewer, so the candidate's TR index
// misses).
func moviePage(uri, akaTitle, runtime, country string, fillerRows int) *Page {
	var b strings.Builder
	b.WriteString("<html><body><table>")
	for i := 0; i < fillerRows; i++ {
		b.WriteString("<tr><td>filler</td></tr>")
	}
	b.WriteString("<tr><td>")
	if akaTitle != "" {
		b.WriteString("<b>Also Known As:</b> " + akaTitle + " <br>")
	}
	b.WriteString("<b>Runtime:</b> " + runtime + " <br>")
	b.WriteString("<b>Country:</b> " + country + " <br>")
	b.WriteString("</td></tr></table></body></html>")
	return NewPage(uri, b.String())
}

// paperSample reproduces the 4-page working sample of Table 1.
func paperSample() Sample {
	return Sample{
		moviePage("./title/tt0095159/", "", "108 min", "USA/UK", 5),
		moviePage("./title/tt0071853/", "", "91 min", "UK", 5),
		moviePage("./title/tt0074103/", "The Wing and the Thigh (International: English title)", "104 min", "France", 5),
		moviePage("./title/tt0102059/", "", "84 min", "Italy", 3),
	}
}

// runtimeOracle points at the text node following the <B>Runtime:</B>
// label — the scripted equivalent of the user clicking the runtime value.
func runtimeOracle() Oracle {
	return OracleFunc(func(component string, p *Page) []*dom.Node {
		if component != "runtime" {
			return nil
		}
		lbl := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
			return n.Type == dom.TextNode && strings.TrimSpace(n.Data) == "Runtime:"
		})
		if lbl == nil {
			return nil
		}
		// The value is the text node after the label's parent <B>.
		for s := lbl.Parent.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode && strings.TrimSpace(s.Data) != "" {
				return []*dom.Node{s}
			}
		}
		return nil
	})
}

func TestPathToPrecise(t *testing.T) {
	p := paperSample()[0]
	val := runtimeOracle().Select("runtime", p)
	if len(val) != 1 {
		t.Fatal("oracle setup")
	}
	path, ok := PathTo(val[0])
	if !ok {
		t.Fatal("PathTo failed")
	}
	want := "BODY[1]/TABLE[1]/TR[6]/TD[1]/text()[1]"
	if got := path.String(); got != want {
		t.Errorf("precise path = %s, want %s", got, want)
	}
	// The generated path must select the same node back.
	c, err := path.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ns := c.SelectLocation(p.Doc)
	if len(ns) != 1 || ns[0] != val[0] {
		t.Error("path does not round-trip to the selected node")
	}
}

func TestPathToElement(t *testing.T) {
	p := paperSample()[0]
	td := dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("td") })
	path, ok := PathTo(td)
	if !ok {
		t.Fatal("PathTo failed")
	}
	if got := path.String(); got != "BODY[1]/TABLE[1]/TR[1]/TD[1]" {
		t.Errorf("element path = %s", got)
	}
}

func TestCandidateRule(t *testing.T) {
	b := &Builder{Sample: paperSample(), Oracle: runtimeOracle()}
	r, _, err := b.Candidate("runtime")
	if err != nil {
		t.Fatal(err)
	}
	if r.Optionality != rule.Mandatory {
		t.Error("candidate must default to mandatory")
	}
	if r.Multiplicity != rule.SingleValued {
		t.Error("candidate must default to single-valued")
	}
	if r.Format != rule.Text {
		t.Error("text-node selection must give format=text")
	}
	if len(r.Locations) != 1 || !strings.Contains(r.Locations[0], "TR[6]/TD[1]/text()[1]") {
		t.Errorf("candidate location = %v", r.Locations)
	}
}

// TestTable1Verdicts reproduces the exact hit/unexpected/void pattern of
// the paper's Table 1: pages a,b match; page c retrieves the AKA title;
// page d retrieves nothing.
func TestTable1Verdicts(t *testing.T) {
	sample := paperSample()
	b := &Builder{Sample: sample, Oracle: runtimeOracle()}
	r, _, err := b.Candidate("runtime")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(r, sample, b.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts := []Verdict{VerdictMatch, VerdictMatch, VerdictUnexpected, VerdictVoid}
	for i, res := range rep.Results {
		if res.Verdict != wantVerdicts[i] {
			t.Errorf("page %s: verdict %v, want %v (value %q)",
				res.Page.URI, res.Verdict, wantVerdicts[i], res.Value)
		}
	}
	if !strings.Contains(rep.Results[2].Value, "The Wing and the Thigh") {
		t.Errorf("page c must retrieve the AKA title, got %q", rep.Results[2].Value)
	}
	if rep.Results[3].Value != "-" {
		t.Errorf("page d must display '-', got %q", rep.Results[3].Value)
	}
	if rep.OK(r.Optionality) {
		t.Error("candidate must not be OK before refinement")
	}
}

// TestTable3Refinement reproduces Table 3: after refinement the rule
// matches the correct runtime in all four pages.
func TestTable3Refinement(t *testing.T) {
	sample := paperSample()
	b := &Builder{Sample: sample, Oracle: runtimeOracle()}
	res, err := b.BuildRule("runtime")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rule did not converge; actions: %v\nfinal rule:\n%s",
			res.Actions, res.Rule.String())
	}
	final := res.FinalReport()
	want := []string{"108 min", "91 min", "104 min", "84 min"}
	for i, w := range want {
		if got := final.Results[i].Value; got != w {
			t.Errorf("page %d value = %q, want %q", i, got, w)
		}
	}
	// The refined rule must embed the contextual label, as in Table 2b.
	joined := strings.Join(res.Rule.Locations, " ")
	if !strings.Contains(joined, "Runtime:") {
		t.Errorf("refined locations must reference the Runtime: label: %v", res.Rule.Locations)
	}
}

func TestContextAblationFailsOnShift(t *testing.T) {
	sample := paperSample()
	b := &Builder{Sample: sample, Oracle: runtimeOracle(), DisableContext: true, DisableAltPaths: true}
	res, err := b.BuildRule("runtime")
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("positional-only rules must fail on the AKA position shift")
	}
}

func TestAltPathsAloneFixVoidOnly(t *testing.T) {
	// With context disabled but alternative paths on, page d (void) gets
	// an alternative location; page c (unexpected) cannot be fixed.
	sample := paperSample()
	b := &Builder{Sample: sample, Oracle: runtimeOracle(), DisableContext: true}
	res, err := b.BuildRule("runtime")
	if err != nil {
		t.Fatal(err)
	}
	final := res.FinalReport()
	if final.Results[3].Verdict != VerdictMatch {
		t.Errorf("page d should be fixed by an alternative path, got %v", final.Results[3].Verdict)
	}
	if res.OK {
		t.Error("page c's unexpected value cannot be fixed without context")
	}
}

func TestOptionalityRefinement(t *testing.T) {
	// Component "language" present in pages 1-2 only.
	mk := func(uri string, lang string) *Page {
		h := "<html><body><div>"
		if lang != "" {
			h += "<b>Language:</b> <span>" + lang + "</span>"
		}
		h += "</div></body></html>"
		return NewPage(uri, h)
	}
	sample := Sample{mk("p1", "English"), mk("p2", "French"), mk("p3", "")}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		span := dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("span") })
		if span == nil {
			return nil
		}
		return []*dom.Node{span.FirstChild}
	})
	b := &Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("language")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("did not converge: %v", res.Actions)
	}
	if res.Rule.Optionality != rule.Optional {
		t.Errorf("optionality = %s, want optional", res.Rule.Optionality)
	}
}

func TestMultivalueRefinement(t *testing.T) {
	mk := func(uri string, actors ...string) *Page {
		h := "<html><body><ul>"
		for _, a := range actors {
			h += "<li>" + a + "</li>"
		}
		h += "</ul></body></html>"
		return NewPage(uri, h)
	}
	sample := Sample{
		mk("p1", "Alice", "Bob", "Carol"),
		mk("p2", "Dave"),
		mk("p3", "Eve", "Frank"),
	}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		lis := dom.FindAll(p.Doc, func(n *dom.Node) bool { return n.TagIs("li") })
		var out []*dom.Node
		for _, li := range lis {
			out = append(out, li.FirstChild)
		}
		return out
	})
	b := &Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("actor")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("did not converge: actions %v, rule:\n%s", res.Actions, res.Rule.String())
	}
	if res.Rule.Multiplicity != rule.Multivalued {
		t.Errorf("multiplicity = %s, want multivalued", res.Rule.Multiplicity)
	}
	joined := strings.Join(res.Rule.Locations, " ")
	if !strings.Contains(joined, "position()>=1") {
		t.Errorf("broadened predicate missing: %v", res.Rule.Locations)
	}
	// Applying the final rule to page 1 must yield all three actors.
	c, err := res.Rule.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got := c.Apply(sample[0].Doc)
	if len(got) != 3 {
		t.Fatalf("applied rule found %d actors, want 3", len(got))
	}
}

func TestMixedFormatRefinement(t *testing.T) {
	// Component "comment": pure text in page 1, text + <i> markup in
	// page 2 — the incomplete situation of §3.4.
	p1 := NewPage("p1", `<html><body><div class="c">plain comment</div></body></html>`)
	p2 := NewPage("p2", `<html><body><div class="c">styled <i>comment</i> here</div></body></html>`)
	sample := Sample{p1, p2}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		div := dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("div") })
		if div == nil {
			return nil
		}
		// Mixed components: the oracle designates the containing element.
		if p.URI == "p2" {
			return []*dom.Node{div}
		}
		// Pure-text page: the user would click the text itself.
		return []*dom.Node{div.FirstChild}
	})
	b := &Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("comment")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule.Format != rule.Mixed {
		t.Errorf("format = %s, want mixed (actions: %v)", res.Rule.Format, res.Actions)
	}
}

func TestDivergingStep(t *testing.T) {
	// Table 2 rows e/f: first/last instance paths differing only in the
	// TR index deduce TR as the repetitive element.
	first := Path{Steps: []Step{
		{Test: "BODY", Index: 1}, {Desc: true, Test: "TABLE", Index: 1},
		{Test: "TR", Index: 2}, {Test: "TD", Index: 2}, {Test: "text()", Index: 1},
	}}
	last := Path{Steps: []Step{
		{Test: "BODY", Index: 1}, {Desc: true, Test: "TABLE", Index: 1},
		{Test: "TR", Index: 17}, {Test: "TD", Index: 2}, {Test: "text()", Index: 1},
	}}
	idx, ok := DivergingStep(first, last)
	if !ok || first.Steps[idx].Test != "TR" {
		t.Fatalf("diverging step = %d, ok=%v", idx, ok)
	}
	// Two diverging levels → not a single repetitive element.
	bad := last.Clone()
	bad.Steps[3].Index = 5
	if _, ok := DivergingStep(first, bad); ok {
		t.Error("two diverging levels must not be accepted")
	}
	// Different shapes → not comparable.
	if _, ok := DivergingStep(first, Path{Steps: first.Steps[:3]}); ok {
		t.Error("different lengths must not be accepted")
	}
}

func TestPathCloneIndependence(t *testing.T) {
	p := Path{Steps: []Step{{Test: "BODY", Index: 1}, {Test: "text()", Index: 1, Preds: []string{"x"}}}}
	c := p.Clone()
	c.Steps[1].Preds[0] = "y"
	c.Steps[0].Index = 9
	if p.Steps[1].Preds[0] != "x" || p.Steps[0].Index != 1 {
		t.Error("Clone must deep-copy steps and predicates")
	}
}

func TestPathRendering(t *testing.T) {
	cases := []struct {
		path Path
		want string
	}{
		{
			Path{Steps: []Step{{Test: "BODY", Index: 1}, {Test: "DIV", Index: 2}, {Test: "text()", Index: 1}}},
			"BODY[1]/DIV[2]/text()[1]",
		},
		{
			Path{Steps: []Step{{Test: "BODY"}, {Desc: true, Test: "TABLE", Index: 1}, {Test: "TR", Broaden: "position()>=1"}}},
			"BODY//TABLE[1]/TR[position()>=1]",
		},
		{
			Path{Steps: []Step{{Test: "BODY"}, {Desc: true, Test: "text()", Preds: []string{"contains(., 'x')"}}}},
			"BODY//text()[contains(., 'x')]",
		},
	}
	for _, c := range cases {
		if got := c.path.String(); got != c.want {
			t.Errorf("got %s, want %s", got, c.want)
		}
		if _, err := xpath.Compile(c.path.String()); err != nil {
			t.Errorf("rendered path %s does not compile: %v", c.path.String(), err)
		}
	}
}

func TestContextPredicateQuoting(t *testing.T) {
	for _, label := range []string{"Runtime:", "it's", `say "hi"`, `both ' and "`} {
		pred := contextPredicate(label)
		if _, err := xpath.Compile("BODY//text()[" + pred + "]"); err != nil {
			t.Errorf("predicate for %q does not compile: %v", label, err)
		}
	}
}

func TestCheckTableFormat(t *testing.T) {
	sample := paperSample()
	b := &Builder{Sample: sample, Oracle: runtimeOracle()}
	r, _, _ := b.Candidate("runtime")
	rep, _ := Check(r, sample, b.Oracle)
	tbl := rep.Table()
	if !strings.Contains(tbl, "./title/tt0095159/") || !strings.Contains(tbl, "108 min") {
		t.Errorf("table missing expected rows:\n%s", tbl)
	}
}

func TestBuildAllRecordsOnlyValidRules(t *testing.T) {
	sample := paperSample()
	repo := rule.NewRepository("imdb-movies")
	b := &Builder{Sample: sample, Oracle: runtimeOracle()}
	results, err := b.BuildAll(repo, []string{"runtime"})
	if err != nil {
		t.Fatal(err)
	}
	if !results["runtime"].OK {
		t.Fatal("runtime rule should converge")
	}
	if _, ok := repo.Lookup("runtime"); !ok {
		t.Error("valid rule must be recorded in the repository")
	}
}

func TestSampleFirstWithMissing(t *testing.T) {
	b := Sample{NewPage("p", "<html><body></body></html>")}
	_, _, err := b.FirstWith("nothing", OracleFunc(func(string, *Page) []*dom.Node { return nil }))
	if err == nil {
		t.Error("FirstWith must fail for components absent from the sample")
	}
}

func TestNormalizeForDisplay(t *testing.T) {
	if textutil.NormalizeSpace("  108   min ") != "108 min" {
		t.Error("display normalization")
	}
}
