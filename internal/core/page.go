package core

import (
	"fmt"

	"repro/internal/dom"
)

// Page is one Web page of a cluster: its URI and parsed document.
//
// A page constructed with NewPage is parsed eagerly (Doc is always set); a
// page constructed with NewPageLazy carries only the raw source and parses
// on the first Document call. Lazy pages keep the ingest hot path DOM-free:
// the streaming extractor and the streaming feature builder work straight
// from Source, and a tree is only materialized when some consumer
// genuinely needs one (general XPath fallback, induction capture, page
// rendering).
type Page struct {
	URI string
	Doc *dom.Node

	src     string
	lazy    bool
	onParse func(*dom.Node)
}

// NewPage parses src into a Page.
func NewPage(uri, src string) *Page {
	return &Page{URI: uri, Doc: dom.Parse(src)}
}

// NewPageLazy returns a Page holding the raw source without parsing it.
// Doc stays nil until Document is called.
func NewPageLazy(uri, src string) *Page {
	return &Page{URI: uri, src: src, lazy: true}
}

// Source returns the raw HTML the page was constructed from and whether it
// is available (only lazy pages retain their source).
func (p *Page) Source() (string, bool) {
	return p.src, p.lazy
}

// SetOnParse registers a hook invoked (at most once) when a lazy page is
// actually parsed by Document. The service layer uses it to admit the tree
// into the page cache only when a parse really happened, so stream-path
// extractions stop paying cache insertions for trees nobody built.
func (p *Page) SetOnParse(fn func(*dom.Node)) {
	p.onParse = fn
}

// Document returns the parsed tree, materializing it on first use for lazy
// pages. For non-lazy pages it simply returns Doc (which may be nil for
// placeholder pages on pipeline error paths — those never carry source).
func (p *Page) Document() *dom.Node {
	if p.Doc == nil && p.lazy {
		p.Doc = dom.Parse(p.src)
		if p.onParse != nil {
			p.onParse(p.Doc)
			p.onParse = nil
		}
	}
	return p.Doc
}

// Oracle supplies the human contribution of the Retrozilla scenario: given
// a component name and a page, point at the DOM nodes forming the
// component value in that page. A nil result means the component is absent
// from the page (which drives the optionality refinement); multiple nodes
// mean either a multivalued component (sibling instances) or a mixed
// value. In the interactive tool the oracle is the user clicking in the
// browser; in the experiments it is the corpus ground truth.
type Oracle interface {
	Select(component string, p *Page) []*dom.Node
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(component string, p *Page) []*dom.Node

// Select implements Oracle.
func (f OracleFunc) Select(component string, p *Page) []*dom.Node {
	return f(component, p)
}

// Sample is a working sample: the representative subset of a page cluster
// the rules are induced from (§3.1). Practice per the paper: ~10 randomly
// selected pages usually include most structural variants.
type Sample []*Page

// FirstWith returns the first page in which the oracle finds the
// component, mirroring the "randomly chosen page" that seeds candidate
// rule building (§3.2); deterministic order keeps experiments
// reproducible.
func (s Sample) FirstWith(component string, o Oracle) (*Page, []*dom.Node, error) {
	for _, p := range s {
		if nodes := o.Select(component, p); len(nodes) > 0 {
			return p, nodes, nil
		}
	}
	return nil, nil, fmt.Errorf("core: component %q not present in any sample page", component)
}
