package core

import (
	"fmt"

	"repro/internal/dom"
)

// Page is one Web page of a cluster: its URI and parsed document.
type Page struct {
	URI string
	Doc *dom.Node
}

// NewPage parses src into a Page.
func NewPage(uri, src string) *Page {
	return &Page{URI: uri, Doc: dom.Parse(src)}
}

// Oracle supplies the human contribution of the Retrozilla scenario: given
// a component name and a page, point at the DOM nodes forming the
// component value in that page. A nil result means the component is absent
// from the page (which drives the optionality refinement); multiple nodes
// mean either a multivalued component (sibling instances) or a mixed
// value. In the interactive tool the oracle is the user clicking in the
// browser; in the experiments it is the corpus ground truth.
type Oracle interface {
	Select(component string, p *Page) []*dom.Node
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(component string, p *Page) []*dom.Node

// Select implements Oracle.
func (f OracleFunc) Select(component string, p *Page) []*dom.Node {
	return f(component, p)
}

// Sample is a working sample: the representative subset of a page cluster
// the rules are induced from (§3.1). Practice per the paper: ~10 randomly
// selected pages usually include most structural variants.
type Sample []*Page

// FirstWith returns the first page in which the oracle finds the
// component, mirroring the "randomly chosen page" that seeds candidate
// rule building (§3.2); deterministic order keeps experiments
// reproducible.
func (s Sample) FirstWith(component string, o Oracle) (*Page, []*dom.Node, error) {
	for _, p := range s {
		if nodes := o.Select(component, p); len(nodes) > 0 {
			return p, nodes, nil
		}
	}
	return nil, nil, fmt.Errorf("core: component %q not present in any sample page", component)
}
