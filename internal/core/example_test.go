package core_test

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/extract"
	"repro/internal/rule"
)

// ExampleBuilder_BuildRule walks the complete §3 scenario on a two-page
// working sample: the oracle (standing in for the user's click) selects
// the price value, the builder computes the candidate rule and refines it
// until it matches both pages.
func ExampleBuilder_BuildRule() {
	sample := core.Sample{
		core.NewPage("p1", `<html><body><div><b>Price:</b> $10.00 <br></div></body></html>`),
		core.NewPage("p2", `<html><body><div><b>New!</b> today <br><b>Price:</b> $12.50 <br></div></body></html>`),
	}
	oracle := core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		label := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
			return n.Type == dom.TextNode && strings.TrimSpace(n.Data) == "Price:"
		})
		if label == nil {
			return nil
		}
		for s := label.Parent.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode && strings.TrimSpace(s.Data) != "" {
				return []*dom.Node{s}
			}
		}
		return nil
	})
	b := &core.Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("price")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("converged:", res.OK)
	fmt.Println("optionality:", res.Rule.Optionality)
	fmt.Println("final values:")
	for _, r := range res.FinalReport().Results {
		fmt.Printf("  %s -> %s\n", r.Page.URI, r.Value)
	}
	// Output:
	// converged: true
	// optionality: mandatory
	// final values:
	//   p1 -> $10.00
	//   p2 -> $12.50
}

// ExampleCheck shows the tabular checking step in isolation: a precise
// positional rule matches the page it was built from but misses the
// shifted page (the Table 1 situation).
func ExampleCheck() {
	sample := core.Sample{
		core.NewPage("a", `<html><body><p>first</p><p>target</p></body></html>`),
		core.NewPage("b", `<html><body><p>extra</p><p>first</p><p>target</p></body></html>`),
	}
	oracle := core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		ps := dom.FindAll(p.Doc, func(n *dom.Node) bool { return n.TagIs("p") })
		return []*dom.Node{ps[len(ps)-1].FirstChild}
	})
	r := rule.Rule{
		Name: "target", Optionality: rule.Mandatory,
		Multiplicity: rule.SingleValued, Format: rule.Text,
		Locations: []string{"BODY[1]/P[2]/text()[1]"},
	}
	rep, _ := core.Check(r, sample, oracle)
	for _, res := range rep.Results {
		fmt.Printf("%s: %s (%s)\n", res.Page.URI, res.Verdict, res.Value)
	}
	// Output:
	// a: match (target)
	// b: unexpected (first)
}

// ExamplePathTo shows precise location-path generation for a clicked
// node.
func ExamplePathTo() {
	page := core.NewPage("p", `<html><body><table><tr><td>a</td><td><b>x</b></td></tr></table></body></html>`)
	b := dom.FindFirst(page.Doc, func(n *dom.Node) bool { return n.TagIs("b") })
	path, _ := core.PathTo(b.FirstChild)
	fmt.Println(path.String())
	// Output:
	// BODY[1]/TABLE[1]/TR[1]/TD[2]/B[1]/text()[1]
}

// Example_extraction wires a recorded repository into the XML extraction
// processor (§4).
func Example_extraction() {
	repo := rule.NewRepository("products")
	_ = repo.Record(rule.Rule{
		Name: "price", Optionality: rule.Mandatory,
		Multiplicity: rule.SingleValued, Format: rule.Text,
		Locations: []string{`BODY//text()[preceding::text()[1][contains(., 'Price:')]]`},
	})
	proc, _ := extract.NewProcessor(repo)
	doc, _ := proc.ExtractCluster([]*core.Page{
		core.NewPage("http://shop.example/1", `<html><body><b>Price:</b> $9.99 <br></body></html>`),
	})
	fmt.Print(doc.XMLString())
	// Output:
	// <?xml version="1.0" encoding="UTF-8"?>
	// <products>
	//   <product uri="http://shop.example/1">
	//     <price>$9.99</price>
	//   </product>
	// </products>
}
