package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
)

// TestPropertyPathToRoundTrip: for every text node and element of every
// generated page, the precise path re-selects exactly that node — the
// invariant candidate rule building depends on (§3.2: the XPath "leading
// to the focused value").
func TestPropertyPathToRoundTrip(t *testing.T) {
	clusters := []*corpus.Cluster{
		corpus.GenerateMovies(corpus.DefaultMovieProfile(1001, 6)),
		corpus.GenerateBooks(corpus.DefaultBookProfile(1002, 6)),
		corpus.GenerateForum(corpus.DefaultForumProfile(1003, 6)),
	}
	checked := 0
	for _, cl := range clusters {
		for _, p := range cl.Pages {
			dom.Walk(p.Doc, func(n *dom.Node) bool {
				if n.Type != dom.TextNode && n.Type != dom.ElementNode {
					return true
				}
				if n.Type == dom.ElementNode && n.Data == "HTML" {
					return true
				}
				path, ok := core.PathTo(n)
				if !ok {
					t.Fatalf("%s: core.PathTo failed for %s", p.URI, dom.OuterHTMLShort(n, 20))
				}
				c, err := path.Compile()
				if err != nil {
					t.Fatalf("%s: path %q does not compile: %v", p.URI, path.String(), err)
				}
				ns := c.SelectLocation(p.Doc)
				if len(ns) != 1 || ns[0] != n {
					t.Fatalf("%s: path %q selects %d nodes (want exactly the source node)",
						p.URI, path.String(), len(ns))
				}
				checked++
				return true
			})
		}
	}
	if checked < 500 {
		t.Fatalf("only %d nodes checked; fixture too small", checked)
	}
}

// TestPropertyGroundTruthSelectable: every ground-truth node is inside
// its page and has a valid precise path (the corpus invariant every
// experiment relies on).
func TestPropertyGroundTruthSelectable(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(1004, 15))
	for _, p := range cl.Pages {
		for _, comp := range cl.ComponentNames() {
			for _, n := range cl.Truth(p, comp) {
				if n.Root() != p.Doc {
					t.Fatalf("%s %s: truth node detached", p.URI, comp)
				}
				if _, ok := core.PathTo(n); !ok {
					t.Fatalf("%s %s: truth node has no path", p.URI, comp)
				}
			}
		}
	}
}

// TestPropertyCheckConsistency: a rule whose location is the precise path
// of the oracle's selection always yields core.VerdictMatch on that page.
func TestPropertyCheckConsistency(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(1005, 10))
	oracle := cl.Oracle()
	for _, p := range cl.Pages {
		for _, comp := range []string{"title", "runtime", "rating"} {
			nodes := oracle.Select(comp, &core.Page{URI: p.URI, Doc: p.Doc})
			if len(nodes) == 0 {
				continue
			}
			// Note: corpus pages are shared; use the cluster page object
			// directly so oracle lookups hit the truth map.
			nodes = oracle.Select(comp, p)
			if len(nodes) == 0 {
				t.Fatalf("oracle lost %s on %s", comp, p.URI)
			}
			path, ok := core.PathTo(nodes[0])
			if !ok {
				t.Fatal("core.PathTo")
			}
			b := &core.Builder{Sample: core.Sample{p}, Oracle: oracle}
			r, _, err := b.Candidate(comp)
			if err != nil {
				t.Fatal(err)
			}
			if r.Locations[0] != path.String() {
				t.Fatalf("candidate location %q != precise path %q", r.Locations[0], path.String())
			}
			rep, err := core.Check(r, core.Sample{p}, oracle)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Results[0].Verdict != core.VerdictMatch {
				t.Fatalf("%s %s: self-check verdict %v", p.URI, comp, rep.Results[0].Verdict)
			}
		}
	}
}
