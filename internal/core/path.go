package core

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/xpath"
)

// Step is one location step of a structured path. Rendering produces the
// precise position-based XPaths of §3.2 and their refined forms of §3.4.
type Step struct {
	// Desc marks the step as reached via // (descendant-or-self) instead
	// of a direct child step.
	Desc bool
	// Test is the node test: an element tag (upper case) or "text()".
	Test string
	// Index is the 1-based parent-relative position (TD[3]); 0 omits the
	// position predicate entirely.
	Index int
	// Broaden, when non-empty, replaces the position predicate — used by
	// multivalue refinement, e.g. "position()>=1" (Table 2 row d).
	Broaden string
	// Preds are extra predicates appended after the position predicate,
	// e.g. the contextual predicate of Table 2 row b.
	Preds []string
}

func (s Step) render(first bool) string {
	var b strings.Builder
	switch {
	case s.Desc:
		b.WriteString("//")
	case !first:
		b.WriteString("/")
	}
	b.WriteString(s.Test)
	switch {
	case s.Broaden != "":
		fmt.Fprintf(&b, "[%s]", s.Broaden)
	case s.Index > 0:
		fmt.Fprintf(&b, "[%d]", s.Index)
	}
	for _, p := range s.Preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// Path is a structured location path anchored at the document element
// (its first step is BODY), matching the paper's location notation
// BODY[1]/DIV[2]/…/text()[1].
type Path struct {
	Steps []Step
}

// String renders the path as an XPath expression.
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		b.WriteString(s.render(i == 0))
	}
	return b.String()
}

// Compile compiles the rendered path.
func (p Path) Compile() (*xpath.Compiled, error) {
	return xpath.Compile(p.String())
}

// Clone deep-copies the path so refinements never alias predicate slices.
func (p Path) Clone() Path {
	steps := make([]Step, len(p.Steps))
	copy(steps, p.Steps)
	for i := range steps {
		if len(steps[i].Preds) > 0 {
			preds := make([]string, len(steps[i].Preds))
			copy(preds, steps[i].Preds)
			steps[i].Preds = preds
		}
	}
	return Path{Steps: steps}
}

// Leaf returns a pointer to the last step. Panics on empty paths, which
// cannot be produced by PathTo.
func (p *Path) Leaf() *Step { return &p.Steps[len(p.Steps)-1] }

// PathTo computes the precise position-based path from the document
// element down to n — the automatic "selection" half of candidate rule
// building (§3.2): every element step carries its parent-relative
// position, and a text-node target ends with text()[k].
//
// The returned path starts at the outermost ancestor below the document
// element (BODY for parsed documents). PathTo returns ok=false for
// detached nodes, attribute nodes and the document element itself.
func PathTo(n *dom.Node) (Path, bool) {
	if n == nil || n.Type == dom.AttributeNode || n.Type == dom.DocumentNode {
		return Path{}, false
	}
	var rev []Step
	switch n.Type {
	case dom.TextNode:
		rev = append(rev, Step{Test: "text()", Index: n.TextIndex()})
	case dom.ElementNode:
		rev = append(rev, Step{Test: n.Data, Index: n.ElementIndex()})
	default:
		return Path{}, false
	}
	cur := n.Parent
	for cur != nil && cur.Type == dom.ElementNode {
		if cur.Parent != nil && cur.Parent.Type == dom.DocumentNode {
			// cur is the document element (HTML); paths are anchored just
			// below it.
			reverse(rev)
			return Path{Steps: rev}, true
		}
		rev = append(rev, Step{Test: cur.Data, Index: cur.ElementIndex()})
		cur = cur.Parent
	}
	if cur == nil {
		// Detached fragment: still usable, anchored at its root.
		reverse(rev)
		if len(rev) == 0 {
			return Path{}, false
		}
		return Path{Steps: rev}, true
	}
	reverse(rev)
	return Path{Steps: rev}, true
}

func reverse(s []Step) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// DivergingStep compares the paths of the first and last instances of a
// multivalued component and returns the index of the deepest common step
// at which only the position differs — the repetitive tag (§3.4: "if rows
// e and f lead to the first and the last values, the repetitive element
// is undoubtedly <TR>"). ok is false when the paths differ in shape, not
// just position.
func DivergingStep(first, last Path) (idx int, ok bool) {
	if len(first.Steps) != len(last.Steps) {
		return 0, false
	}
	idx = -1
	for i := range first.Steps {
		a, b := first.Steps[i], last.Steps[i]
		if a.Test != b.Test || a.Desc != b.Desc {
			return 0, false
		}
		if a.Index != b.Index {
			if idx >= 0 {
				// Positions diverge at two levels: instances do not share
				// a single repetitive element.
				return 0, false
			}
			idx = i
		}
	}
	if idx < 0 {
		return 0, false
	}
	return idx, true
}

// contextPredicate builds the predicate that anchors a value on the
// constant label that visually precedes it (§3.4 "Adding contextual
// information"): the candidate node's nearest preceding text node in
// depth-first document order must contain the label.
func contextPredicate(label string) string {
	return fmt.Sprintf("preceding::text()[1][contains(., %s)]", xpathLiteral(label))
}

// xpathLiteral quotes a string as an XPath literal, picking whichever
// quote character the string does not contain (XPath 1.0 has no escape
// sequences; strings containing both quote kinds drop the double quotes).
func xpathLiteral(s string) string {
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	if !strings.Contains(s, `"`) {
		return `"` + s + `"`
	}
	return "'" + strings.ReplaceAll(s, "'", " ") + "'"
}
