package core

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
)

// Refinement strategies of §3.4. Each strategy inspects a check report,
// transforms the rule (and its structured path mirror) and reports whether
// it changed anything, together with a human-readable action description
// for the build log.

// refineOptionality handles components missing from some pages: a rule
// whose component is absent in at least one sample page becomes optional.
func refineOptionality(r *rule.Rule, rep CheckReport) (string, bool) {
	if r.Optionality == rule.Optional {
		return "", false
	}
	for _, res := range rep.Results {
		if res.Verdict == VerdictAbsent {
			r.Optionality = rule.Optional
			return fmt.Sprintf("set optionality=optional (component absent in %s)",
				res.Page.URI), true
		}
	}
	return "", false
}

// refineMultivalued handles values that appear to be multivalued: the
// repetitive tag is deduced by comparing the precise paths of the first
// and the last instances (Table 2 rows e/f → repetitive element TR), and
// the position predicate on that step is broadened (row d).
func refineMultivalued(r *rule.Rule, paths []Path, rep CheckReport) (string, bool) {
	var sample *PageResult
	for i := range rep.Results {
		if rep.Results[i].Verdict == VerdictNeedsMulti {
			sample = &rep.Results[i]
			break
		}
	}
	if sample == nil {
		return "", false
	}
	exp := sample.Expected
	firstPath, ok1 := PathTo(exp[0])
	lastPath, ok2 := PathTo(exp[len(exp)-1])
	if !ok1 || !ok2 {
		return "", false
	}
	div, ok := DivergingStep(firstPath, lastPath)
	if !ok {
		return "", false
	}
	repTag := firstPath.Steps[div].Test
	firstIdx := firstPath.Steps[div].Index
	if lastPath.Steps[div].Index < firstIdx {
		firstIdx = lastPath.Steps[div].Index
	}
	broaden := fmt.Sprintf("position()>=%d", firstIdx)
	changed := false
	for i := range paths {
		// Broaden the matching step in every structurally compatible
		// location (alternative paths for other layouts are adjusted when
		// they share the repetitive step shape).
		if div < len(paths[i].Steps) && paths[i].Steps[div].Test == repTag {
			paths[i].Steps[div].Broaden = broaden
			paths[i].Steps[div].Index = 0
			changed = true
		}
	}
	if !changed {
		return "", false
	}
	r.Multiplicity = rule.Multivalued
	syncLocations(r, paths)
	return fmt.Sprintf("set multiplicity=multivalued; repetitive tag <%s>, broadened to [%s]",
		repTag, broaden), true
}

// refineFormat handles incomplete values: when the value mixes text and
// HTML tags in at least one page, the format becomes mixed and the
// location is retargeted from the leaf text node to its containing
// element (the component value is then "a list of text nodes separated by
// HTML tags", §7).
func refineFormat(r *rule.Rule, paths []Path, rep CheckReport) (string, bool) {
	hasIncomplete := false
	for _, res := range rep.Results {
		if res.Verdict == VerdictIncomplete {
			hasIncomplete = true
			break
		}
	}
	if !hasIncomplete || r.Format == rule.Mixed {
		return "", false
	}
	changed := false
	for i := range paths {
		if n := len(paths[i].Steps); n > 1 && paths[i].Steps[n-1].Test == "text()" {
			paths[i].Steps = paths[i].Steps[:n-1]
			changed = true
		}
	}
	if !changed {
		return "", false
	}
	r.Format = rule.Mixed
	syncLocations(r, paths)
	return "set format=mixed; retargeted location to the containing element", true
}

// findContextLabel looks for a constant character string that always
// visually appears immediately before the targeted value (§3.4): the
// nearest preceding non-empty text node in depth-first order, identical
// across every page where the component occurs.
func findContextLabel(component string, sample Sample, o Oracle) (string, bool) {
	label := ""
	found := false
	for _, p := range sample {
		exp := o.Select(component, p)
		if len(exp) == 0 {
			continue
		}
		l := precedingLabel(exp[0])
		if l == "" {
			return "", false
		}
		if !found {
			label, found = l, true
			continue
		}
		if l != label {
			return "", false
		}
	}
	return label, found && label != ""
}

// precedingLabel returns the trimmed content of the nearest preceding
// text node of n in document order, skipping whitespace.
func precedingLabel(n *dom.Node) string {
	for cur := dom.PrevInDocument(n); cur != nil; cur = dom.PrevInDocument(cur) {
		if cur.Type == dom.TextNode {
			if s := textutil.NormalizeSpace(cur.Data); s != "" {
				return s
			}
		}
	}
	return ""
}

// contextCandidates generates refined paths at escalating generality for
// the contextual-information strategy:
//
//	level 1 — keep the precise path, replace the leaf position predicate
//	          by the contextual predicate;
//	level 2 — anchor at BODY, keep only the leaf's parent tag:
//	          BODY//TD/text()[ctx];
//	level 3 — fully contextual: BODY//text()[ctx].
//
// Later levels trade syntactic precision for resilience to position
// shifts anywhere in the page, exactly the flexibility/precision
// trade-off §3.4 describes.
func contextCandidates(primary Path, label string) []Path {
	pred := contextPredicate(label)
	var out []Path

	leafTest := primary.Steps[len(primary.Steps)-1].Test

	l1 := primary.Clone()
	leaf := l1.Leaf()
	leaf.Index = 0
	leaf.Broaden = ""
	leaf.Preds = append(leaf.Preds, pred)
	out = append(out, l1)

	if len(primary.Steps) >= 2 {
		parentTest := primary.Steps[len(primary.Steps)-2].Test
		l2 := Path{Steps: []Step{
			{Test: primary.Steps[0].Test},
			{Desc: true, Test: parentTest},
			{Test: leafTest, Preds: []string{pred}},
		}}
		out = append(out, l2)
	}

	l3 := Path{Steps: []Step{
		{Test: primary.Steps[0].Test},
		{Desc: true, Test: leafTest, Preds: []string{pred}},
	}}
	out = append(out, l3)
	return out
}

// okModuloOptionality reports whether a check has only matches and
// absences — i.e. would pass once optionality is adjusted.
func okModuloOptionality(rep CheckReport) bool {
	for _, res := range rep.Results {
		if res.Verdict != VerdictMatch && res.Verdict != VerdictAbsent {
			return false
		}
	}
	return true
}

func countFailing(rep CheckReport) int {
	n := 0
	for _, res := range rep.Results {
		if res.Verdict != VerdictMatch && res.Verdict != VerdictAbsent {
			n++
		}
	}
	return n
}

// syncLocations re-renders the structured paths into the rule's location
// strings.
func syncLocations(r *rule.Rule, paths []Path) {
	locs := make([]string, len(paths))
	for i := range paths {
		locs[i] = paths[i].String()
	}
	r.Locations = locs
}

// describePaths summarizes locations for action logs.
func describePaths(paths []Path) string {
	parts := make([]string, len(paths))
	for i := range paths {
		parts[i] = paths[i].String()
	}
	return strings.Join(parts, " | ")
}
