package core

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/rule"
)

// Builder drives the mapping-rule building scenario of Figure 3: candidate
// rule building, rule checking and iterative refinement against a working
// sample, with the human contribution supplied by an Oracle.
type Builder struct {
	Sample Sample
	Oracle Oracle

	// MaxIterations bounds the refinement loop (default 12).
	MaxIterations int

	// DisableContext turns off the contextual-information strategy
	// (ablation: positional-only rules).
	DisableContext bool
	// DisableAltPaths turns off the alternative-path strategy (ablation).
	DisableAltPaths bool
	// DisableBroaden turns off multivalue broadening (ablation).
	DisableBroaden bool
}

// BuildResult records the outcome of building one rule: the final rule,
// every intermediate check report (the successive tabular views a
// Retrozilla user would inspect) and the refinement actions applied.
type BuildResult struct {
	Rule    rule.Rule
	Reports []CheckReport
	Actions []string
	// OK is true when the final rule retrieves the pertinent component
	// values in every page of the working sample.
	OK bool
}

// FinalReport returns the last check report.
func (br BuildResult) FinalReport() CheckReport {
	return br.Reports[len(br.Reports)-1]
}

func (b *Builder) maxIter() int {
	if b.MaxIterations > 0 {
		return b.MaxIterations
	}
	return 12
}

// Candidate builds the candidate mapping rule for a component (§3.2): the
// oracle selects a value in the first page that has one; the precise
// position-based XPath is computed automatically; optionality and
// multiplicity default to mandatory / single-valued; format derives from
// the selected node's type.
func (b *Builder) Candidate(component string) (rule.Rule, Path, error) {
	if err := rule.ValidateName(component); err != nil {
		return rule.Rule{}, Path{}, err
	}
	_, nodes, err := b.Sample.FirstWith(component, b.Oracle)
	if err != nil {
		return rule.Rule{}, Path{}, err
	}
	value := nodes[0]
	path, ok := PathTo(value)
	if !ok {
		return rule.Rule{}, Path{}, fmt.Errorf("core: cannot locate selected node for %q", component)
	}
	format := rule.Text
	if value.Type == dom.ElementNode {
		format = rule.Mixed
	}
	r := rule.Rule{
		Name:         component,
		Optionality:  rule.Mandatory,
		Multiplicity: rule.SingleValued,
		Format:       format,
		Locations:    []string{path.String()},
	}
	return r, path, nil
}

// BuildRule runs the full scenario for one component: candidate building,
// then check/refine iterations until the rule is valid for every sample
// page or the iteration budget is exhausted.
func (b *Builder) BuildRule(component string) (BuildResult, error) {
	r, primary, err := b.Candidate(component)
	if err != nil {
		return BuildResult{}, err
	}
	paths := []Path{primary}
	res := BuildResult{}

	for iter := 0; iter < b.maxIter(); iter++ {
		rep, err := Check(r, b.Sample, b.Oracle)
		if err != nil {
			return BuildResult{}, err
		}
		res.Reports = append(res.Reports, rep)
		if rep.OK(r.Optionality) {
			res.Rule = r
			res.OK = true
			return res, nil
		}

		action, changed := b.refineOnce(&r, &paths, rep)
		if !changed {
			// No strategy can improve the rule further.
			break
		}
		res.Actions = append(res.Actions, action)
	}
	res.Rule = r
	if len(res.Reports) > 0 {
		res.OK = res.FinalReport().OK(r.Optionality)
	}
	return res, nil
}

// refineOnce applies the highest-priority applicable strategy. Strategy
// order mirrors §3.4: structural property fixes first (they are cheap and
// deterministic), then contextual information, then alternative paths as
// the last resort.
func (b *Builder) refineOnce(r *rule.Rule, paths *[]Path, rep CheckReport) (string, bool) {
	// 1. Multivalue broadening.
	if !b.DisableBroaden {
		if action, ok := refineMultivalued(r, *paths, rep); ok {
			return action, true
		}
	}
	// 2. Format promotion.
	if action, ok := refineFormat(r, *paths, rep); ok {
		return action, true
	}
	// 3. Optionality.
	if action, ok := refineOptionality(r, rep); ok {
		return action, true
	}
	// 4. Contextual information. Applies to multivalued rules too: a
	// broadened position predicate that overshoots (selects sibling
	// values of *other* components) is narrowed back by the constant
	// label, which every instance of the component shares.
	if !b.DisableContext {
		if action, ok := b.refineContext(r, paths, rep); ok {
			return action, true
		}
	}
	// 5. Alternative path.
	if !b.DisableAltPaths {
		if action, ok := b.refineAltPath(r, paths, rep); ok {
			return action, true
		}
	}
	return "", false
}

// refineContext implements "Adding contextual information": when a
// constant label precedes the value in every page, trial paths of
// escalating generality replace the primary location; the least general
// trial that fixes every remaining mismatch wins. Trials that do not
// strictly reduce the number of failing pages are rejected, so the
// strategy never regresses.
func (b *Builder) refineContext(r *rule.Rule, paths *[]Path, rep CheckReport) (string, bool) {
	label, ok := findContextLabel(r.Name, b.Sample, b.Oracle)
	if !ok {
		return "", false
	}
	baseline := countFailing(rep)
	for level, trial := range contextCandidates((*paths)[0], label) {
		trialRule := *r
		trialPaths := append([]Path{trial}, (*paths)[1:]...)
		syncLocations(&trialRule, trialPaths)
		trialRep, err := Check(trialRule, b.Sample, b.Oracle)
		if err != nil {
			continue
		}
		if okModuloOptionality(trialRep) || countFailing(trialRep) < baseline {
			*r = trialRule
			*paths = trialPaths
			return fmt.Sprintf("added contextual information (label %q, level %d): %s",
				label, level+1, describePaths(trialPaths)), true
		}
	}
	return "", false
}

// refineAltPath implements "Adding an alternative path": a value is
// selected (by the oracle) in a page where the current locations retrieve
// nothing, and its precise path is appended to the rule.
func (b *Builder) refineAltPath(r *rule.Rule, paths *[]Path, rep CheckReport) (string, bool) {
	for _, res := range rep.Results {
		if res.Verdict != VerdictVoid {
			continue
		}
		alt, ok := PathTo(res.Expected[0])
		if !ok {
			continue
		}
		if r.Multiplicity == rule.Multivalued && len(res.Expected) > 1 {
			// Broaden the repetitive step of the new path too.
			if lastP, ok2 := PathTo(res.Expected[len(res.Expected)-1]); ok2 {
				if div, ok3 := DivergingStep(alt, lastP); ok3 {
					first := alt.Steps[div].Index
					if lastP.Steps[div].Index < first {
						first = lastP.Steps[div].Index
					}
					alt.Steps[div].Broaden = fmt.Sprintf("position()>=%d", first)
					alt.Steps[div].Index = 0
				}
			}
		}
		// Reject duplicates (would loop forever).
		rendered := alt.String()
		for _, loc := range r.Locations {
			if loc == rendered {
				return "", false
			}
		}
		*paths = append(*paths, alt)
		syncLocations(r, *paths)
		return fmt.Sprintf("appended alternative path for %s: %s", res.Page.URI, rendered), true
	}
	return "", false
}

// BuildAll builds rules for every named component and records the valid
// ones in the repository; it returns the per-component results keyed by
// name.
func (b *Builder) BuildAll(repo *rule.Repository, components []string) (map[string]BuildResult, error) {
	out := make(map[string]BuildResult, len(components))
	for _, comp := range components {
		res, err := b.BuildRule(comp)
		if err != nil {
			return out, fmt.Errorf("core: building rule for %q: %w", comp, err)
		}
		out[comp] = res
		if res.OK {
			if err := repo.Record(res.Rule); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
