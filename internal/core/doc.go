// Package core implements the paper's primary contribution: the
// semi-automated construction of mapping rules from a working sample of
// Web pages (§3 of "Semi-Automated Extraction of Targeted Data from Web
// Pages", Estiévenart et al., ICDE Workshops 2006).
//
// The build scenario (Figure 3 of the paper) is driven by Builder:
//
//	sample selection  →  candidate rule building  →  rule checking
//	        ↑                                            │
//	        └──────────── rule refinement  ←── mismatch ─┘
//	                            │
//	                       rule recording
//
// Retrozilla's human operator contributes two inputs: pointing at a
// component value in a rendered page (selection) and naming it
// (interpretation). Both are abstracted behind the Oracle interface, so
// the same code paths serve an interactive CLI and the scripted
// ground-truth oracle used by the experiments.
//
// The refinement strategies of §3.4 are implemented as composable
// functions over Path, a structured representation of the precise
// position-based XPaths the candidate generator emits:
//
//   - contextual information: replace a fragile position predicate with a
//     predicate anchored on a constant label that visually precedes the
//     value (Table 2 row b);
//   - optionality / multiplicity / format adjustment, including
//     repetitive-tag deduction by comparing the paths of the first and
//     last instances (Table 2 rows c–f);
//   - alternative paths: append a second location computed from a page
//     the current locations cannot handle.
package core
