package core

import (
	"fmt"

	"repro/internal/rule"
)

// RepairOutcome reports what a repair pass did to one rule.
type RepairOutcome int

// Repair outcomes.
const (
	// RepairUnchanged: the recorded rule still retrieves the pertinent
	// values on the new sample.
	RepairUnchanged RepairOutcome = iota
	// RepairRebuilt: the rule failed on the new sample and was rebuilt
	// from fresh selections (§7: "the rule should be refined manually
	// from the negative examples").
	RepairRebuilt
	// RepairFailed: even a rebuild could not produce a valid rule.
	RepairFailed
)

// String names the outcome.
func (o RepairOutcome) String() string {
	switch o {
	case RepairUnchanged:
		return "unchanged"
	case RepairRebuilt:
		return "rebuilt"
	case RepairFailed:
		return "failed"
	default:
		return fmt.Sprintf("RepairOutcome(%d)", int(o))
	}
}

// RepairResult is the outcome of repairing one rule.
type RepairResult struct {
	Outcome RepairOutcome
	Rule    rule.Rule
	// Build holds the rebuild trace when Outcome is RepairRebuilt or
	// RepairFailed.
	Build *BuildResult
}

// RepairRule completes the paper's §7 sketch of semi-automated error
// recovery: given a recorded rule and a sample of current pages (e.g.
// pages on which the extraction processor reported failures), the rule is
// re-checked; if it no longer retrieves the pertinent values, the full
// build scenario runs again with the operator's (oracle's) fresh
// selections, producing a replacement rule.
func (b *Builder) RepairRule(r rule.Rule, verbose bool) (RepairResult, error) {
	rep, err := Check(r, b.Sample, b.Oracle)
	if err != nil {
		return RepairResult{}, err
	}
	if rep.OK(r.Optionality) {
		return RepairResult{Outcome: RepairUnchanged, Rule: r}, nil
	}
	res, err := b.BuildRule(r.Name)
	if err != nil {
		return RepairResult{}, err
	}
	out := RepairResult{Rule: res.Rule, Build: &res}
	if res.OK {
		out.Outcome = RepairRebuilt
		// Carry over the intra-node refinement: it expresses value
		// cleanup, not location, so it survives a location rebuild.
		out.Rule.Refine = r.Refine
	} else {
		out.Outcome = RepairFailed
		out.Rule = r // keep the old rule; a broken replacement is worse
	}
	return out, nil
}

// RepairRepository re-checks every rule of a repository against the
// sample and rebuilds the failing ones in place. It returns the outcome
// per component.
func (b *Builder) RepairRepository(repo *rule.Repository) (map[string]RepairResult, error) {
	out := make(map[string]RepairResult, len(repo.Rules))
	// Collect names first: Record mutates the slice we iterate.
	names := make([]string, len(repo.Rules))
	for i := range repo.Rules {
		names[i] = repo.Rules[i].Name
	}
	for _, name := range names {
		r, _ := repo.Lookup(name)
		res, err := b.RepairRule(*r, false)
		if err != nil {
			return out, fmt.Errorf("core: repairing %q: %w", name, err)
		}
		out[name] = res
		if res.Outcome == RepairRebuilt {
			if err := repo.Record(res.Rule); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
