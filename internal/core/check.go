package core

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// Verdict classifies the outcome of applying a candidate rule to one page
// of the working sample, following the mismatch taxonomy of §3.4.
type Verdict int

// Verdict values.
const (
	// VerdictMatch: the rule selected exactly the expected value nodes
	// (Table 1 rows a and b).
	VerdictMatch Verdict = iota
	// VerdictVoid: the rule selected nothing although the component is
	// present (Table 1 row d).
	VerdictVoid
	// VerdictUnexpected: the rule selected a wrong value — an instance of
	// another component or an intrusive fragment (Table 1 row c).
	VerdictUnexpected
	// VerdictIncomplete: the rule selected part of the value; the value
	// mixes text and HTML tags in this page (format must become mixed).
	VerdictIncomplete
	// VerdictNeedsMulti: the value is multivalued in this page but the
	// rule selects a single instance.
	VerdictNeedsMulti
	// VerdictAbsent: the component does not occur in this page and the
	// rule selected nothing. Acceptable once optionality is optional.
	VerdictAbsent
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictMatch:
		return "match"
	case VerdictVoid:
		return "void"
	case VerdictUnexpected:
		return "unexpected"
	case VerdictIncomplete:
		return "incomplete"
	case VerdictNeedsMulti:
		return "needs-multivalued"
	case VerdictAbsent:
		return "absent"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// PageResult is the outcome of checking a rule against one page.
type PageResult struct {
	Page     *Page
	Verdict  Verdict
	Got      []*dom.Node
	Expected []*dom.Node
	// Value is the display string of what the rule retrieved, as shown in
	// the tabular check view (Table 1); "-" for void results.
	Value string
}

// CheckReport aggregates the per-page outcomes of one checking pass
// (§3.3: "applied on the successive pages of the working sample").
type CheckReport struct {
	Component string
	Results   []PageResult
}

// OK reports whether the rule retrieved the pertinent component values in
// every page: only matches and (for optional components) absences.
func (r CheckReport) OK(opt rule.Optionality) bool {
	for _, res := range r.Results {
		switch res.Verdict {
		case VerdictMatch:
		case VerdictAbsent:
			if opt != rule.Optional {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Failing returns the results whose verdicts require refinement given the
// rule's optionality.
func (r CheckReport) Failing(opt rule.Optionality) []PageResult {
	var out []PageResult
	for _, res := range r.Results {
		switch res.Verdict {
		case VerdictMatch:
		case VerdictAbsent:
			if opt != rule.Optional {
				out = append(out, res)
			}
		default:
			out = append(out, res)
		}
	}
	return out
}

// Table renders the tabular check view the Retrozilla control panel shows
// (Table 1 of the paper): one row per page with the retrieved value.
func (r CheckReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s  %s\n", "Page URI", "Component value")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-34s  %s\n", res.Page.URI,
			textutil.TruncateRunes(res.Value, 60))
	}
	return b.String()
}

// Check applies a candidate rule to every page of the sample and classifies
// each outcome against the oracle's expectation. This automates the
// "visual inspection in a tabular view" of §3.3.
func Check(r rule.Rule, sample Sample, o Oracle) (CheckReport, error) {
	compiled, err := r.Compile()
	if err != nil {
		return CheckReport{}, err
	}
	rep := CheckReport{Component: r.Name}
	for _, p := range sample {
		expected := o.Select(r.Name, p)
		got := compiled.ApplyAll(p.Document())
		verdict := classify(got, expected)
		if verdict == VerdictMatch && r.Multiplicity == rule.SingleValued && len(expected) > 1 {
			// The locations retrieve every instance, but the rule still
			// declares the component single-valued — the §7
			// multi-valued-singleton situation. The multiplicity must be
			// refined, so a plain match is not good enough.
			verdict = VerdictNeedsMulti
		}
		res := PageResult{
			Page:     p,
			Got:      got,
			Expected: expected,
			Verdict:  verdict,
			Value:    displayValue(got),
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// classify compares the retrieved node-set with the expected one.
func classify(got, expected []*dom.Node) Verdict {
	if len(expected) == 0 {
		if len(got) == 0 {
			return VerdictAbsent
		}
		return VerdictUnexpected
	}
	if len(got) == 0 {
		return VerdictVoid
	}
	if sameNodes(got, expected) {
		return VerdictMatch
	}
	// got ⊂ expected: either the value mixes tags (expected is one
	// container holding the retrieved text) or the component is
	// multivalued (expected sibling instances, got only some).
	if subsetOf(got, expected) {
		return VerdictNeedsMulti
	}
	if len(expected) == 1 && expected[0].Type == dom.ElementNode && allWithin(got, expected[0]) {
		return VerdictIncomplete
	}
	// Visual-inspection fallback: the check table shows *values*, and a
	// user accepts a row whose displayed value is the expected one even
	// if the rule selected, say, the containing element rather than the
	// inner text node. Compare normalized string values.
	if displayValue(got) == displayValue(expected) {
		return VerdictMatch
	}
	return VerdictUnexpected
}

func sameNodes(a, b []*dom.Node) bool {
	if len(a) != len(b) {
		return false
	}
	// Both sets are in document order; positional comparison suffices.
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func subsetOf(a, b []*dom.Node) bool {
	set := make(map[*dom.Node]bool, len(b))
	for _, n := range b {
		set[n] = true
	}
	for _, n := range a {
		if !set[n] {
			return false
		}
	}
	return true
}

func allWithin(nodes []*dom.Node, container *dom.Node) bool {
	for _, n := range nodes {
		if n != container && !dom.IsAncestorOf(container, n) {
			return false
		}
	}
	return true
}

// displayValue renders a retrieved node-set the way the check table shows
// it: normalized text, "-" when void, instances joined by " | ".
func displayValue(nodes []*dom.Node) string {
	if len(nodes) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		parts = append(parts, textutil.NormalizeSpace(xpath.NodeStringValue(n)))
	}
	return strings.Join(parts, " | ")
}
