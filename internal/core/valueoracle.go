package core

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// ValueOracle adapts remembered component values into the Oracle the
// builder and repair scenario need, replacing the human operator in a
// long-running service. The §7 repair sketch assumes an operator pointing
// at the pertinent values on the pages where extraction failed; an
// unattended service has no operator, but it does have the values it
// extracted successfully before the page evolved. The oracle answers a
// selection by re-locating those golden values in the (possibly drifted)
// page: page evolution that moves, relabels or duplicates a value leaves
// the value text itself intact, so a string match recovers the operator's
// click.
//
// lookup returns the golden values per component for a page URI (nil when
// the page was never successfully extracted). Selection precedence:
//
//  1. text nodes whose normalized content equals a golden value;
//  2. deepest elements whose whole normalized string value equals a
//     golden value (mixed-format components);
//  3. text nodes *containing* a golden value (values produced by an
//     intra-node refinement are substrings of their text node).
//
// A component whose value genuinely disappeared from the page yields nil
// — the absence that drives the optionality refinement.
func ValueOracle(lookup func(uri string) map[string][]string) Oracle {
	return OracleFunc(func(component string, p *Page) []*dom.Node {
		golden := lookup(p.URI)
		if golden == nil {
			return nil
		}
		want := make(map[string]bool, len(golden[component]))
		for _, v := range golden[component] {
			if v != "" {
				want[v] = true
			}
		}
		if len(want) == 0 {
			return nil
		}

		var exact []*dom.Node
		dom.Walk(p.Document(), func(n *dom.Node) bool {
			if n.Type == dom.TextNode && want[textutil.NormalizeSpace(n.Data)] {
				exact = append(exact, n)
			}
			return true
		})
		if len(exact) > 0 {
			return exact
		}

		// Mixed-format values: the golden value is the string value of a
		// containing element. Keep only the deepest matching element of
		// each chain — ancestors of a match carry the same string value
		// when the value is their only content.
		var elems []*dom.Node
		dom.Walk(p.Document(), func(n *dom.Node) bool {
			if n.Type != dom.ElementNode {
				return true
			}
			if want[textutil.NormalizeSpace(xpath.NodeStringValue(n))] {
				if len(elems) > 0 && dom.IsAncestorOf(elems[len(elems)-1], n) {
					elems[len(elems)-1] = n
				} else {
					elems = append(elems, n)
				}
			}
			return true
		})
		if len(elems) > 0 {
			return elems
		}

		// Refined values ("108" out of "108 min") are substrings of their
		// text node. Require some length so a short fragment does not match
		// half the page.
		var within []*dom.Node
		dom.Walk(p.Document(), func(n *dom.Node) bool {
			if n.Type != dom.TextNode {
				return true
			}
			ns := textutil.NormalizeSpace(n.Data)
			for v := range want {
				if len(v) >= 3 && strings.Contains(ns, v) {
					within = append(within, n)
					break
				}
			}
			return true
		})
		return within
	})
}
