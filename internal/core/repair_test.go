package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/extract"
	"repro/internal/rule"
)

// relocate maps a component's ground-truth nodes from the original
// cluster page (matched by URI) into the drifted clone via their precise
// paths. A relabeled label does not move the value node, so the paths
// still resolve.
func relocate(cl *corpus.Cluster, p *core.Page, component string) []*dom.Node {
	var orig *core.Page
	for _, op := range cl.Pages {
		if op.URI == p.URI {
			orig = op
			break
		}
	}
	if orig == nil {
		return nil
	}
	var out []*dom.Node
	for _, n := range cl.Truth(orig, component) {
		path, ok := core.PathTo(n)
		if !ok {
			continue
		}
		c, err := path.Compile()
		if err != nil {
			continue
		}
		if m := c.SelectLocation(p.Doc); len(m) > 0 {
			out = append(out, m[0])
		}
	}
	return out
}

// TestRepairAfterDrift closes the §7 loop: rules induced on the original
// site fail after a relabeling drift; extraction detects the failures;
// repair rebuilds the broken rule from fresh selections and extraction
// recovers.
func TestRepairAfterDrift(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(2024, 40))
	sample, _ := cl.RepresentativeSplit(10)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := b.BuildAll(repo, []string{"runtime", "title"}); err != nil {
		t.Fatal(err)
	}

	// Drift: every page renames the label preceding the runtime value.
	drifted, injected := corpus.InjectDrift(cl, "runtime", corpus.DriftRelabel, 1.0, 5)
	if len(injected) == 0 {
		t.Fatal("no drift injected")
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	_, failures := proc.ExtractCluster(drifted)
	if len(failures) == 0 {
		t.Fatal("drift must surface as extraction failures")
	}

	// Repair against the drifted pages. The oracle must answer on the
	// drifted trees: relocate ground truth via precise paths.
	driftedOracle := core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		return relocate(cl, p, component)
	})
	rb := &core.Builder{Sample: core.Sample(drifted[:10]), Oracle: driftedOracle}
	results, err := rb.RepairRepository(repo)
	if err != nil {
		t.Fatal(err)
	}
	if results["title"].Outcome != core.RepairUnchanged {
		t.Errorf("title outcome = %v, want unchanged", results["title"].Outcome)
	}
	if results["runtime"].Outcome != core.RepairRebuilt {
		t.Fatalf("runtime outcome = %v, want rebuilt (rule: %s)",
			results["runtime"].Outcome, func() string { r := results["runtime"].Rule; return r.String() }())
	}

	// Extraction over the drifted site now succeeds.
	proc2, err := extract.NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	_, failures2 := proc2.ExtractCluster(drifted)
	for _, f := range failures2 {
		if f.Component == "runtime" {
			t.Errorf("runtime still failing after repair: %v", f)
		}
	}
}

func TestRepairOutcomeString(t *testing.T) {
	if core.RepairUnchanged.String() != "unchanged" ||
		core.RepairRebuilt.String() != "rebuilt" ||
		core.RepairFailed.String() != "failed" {
		t.Error("outcome names")
	}
}
