package core

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/rule"
)

func TestFindContextLabel(t *testing.T) {
	sample := paperSample()
	label, ok := findContextLabel("runtime", sample, runtimeOracle())
	if !ok || label != "Runtime:" {
		t.Fatalf("label = %q, ok=%v", label, ok)
	}
}

func TestFindContextLabelInconsistent(t *testing.T) {
	// Different labels across pages: no constant context exists.
	p1 := NewPage("p1", `<html><body><b>Price:</b> 10 <br></body></html>`)
	p2 := NewPage("p2", `<html><body><b>Cost:</b> 12 <br></body></html>`)
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		b := dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("b") })
		for s := b.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode {
				return []*dom.Node{s}
			}
		}
		return nil
	})
	if _, ok := findContextLabel("price", Sample{p1, p2}, oracle); ok {
		t.Error("inconsistent labels must not produce a context")
	}
}

func TestFindContextLabelNoPrecedingText(t *testing.T) {
	// The very first text in the document has no preceding label.
	p := NewPage("p1", `<html><body><h1>Value</h1></body></html>`)
	oracle := OracleFunc(func(component string, pg *Page) []*dom.Node {
		h := dom.FindFirst(pg.Doc, func(n *dom.Node) bool { return n.TagIs("h1") })
		return []*dom.Node{h.FirstChild}
	})
	if _, ok := findContextLabel("title", Sample{p}, oracle); ok {
		t.Error("value without preceding text must not produce a context")
	}
}

func TestPrecedingLabelSkipsWhitespaceAndTags(t *testing.T) {
	p := NewPage("p", `<html><body><div><span><b>Label:</b></span></div><p>value</p></body></html>`)
	val := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
		return n.Type == dom.TextNode && n.Data == "value"
	})
	if got := precedingLabel(val); got != "Label:" {
		t.Errorf("precedingLabel = %q", got)
	}
}

func TestContextCandidatesEscalation(t *testing.T) {
	primary := Path{Steps: []Step{
		{Test: "BODY", Index: 1},
		{Test: "TABLE", Index: 1},
		{Test: "TR", Index: 6},
		{Test: "TD", Index: 1},
		{Test: "text()", Index: 1},
	}}
	cands := contextCandidates(primary, "Runtime:")
	if len(cands) != 3 {
		t.Fatalf("levels = %d", len(cands))
	}
	l1, l2, l3 := cands[0].String(), cands[1].String(), cands[2].String()
	if !strings.HasPrefix(l1, "BODY[1]/TABLE[1]/TR[6]/TD[1]/text()[preceding::text()") {
		t.Errorf("level 1 = %s", l1)
	}
	if l2 != "BODY//TD/text()[preceding::text()[1][contains(., 'Runtime:')]]" {
		t.Errorf("level 2 = %s", l2)
	}
	if l3 != "BODY//text()[preceding::text()[1][contains(., 'Runtime:')]]" {
		t.Errorf("level 3 = %s", l3)
	}
	// Each candidate must compile.
	for i, c := range cands {
		if _, err := c.Compile(); err != nil {
			t.Errorf("level %d does not compile: %v", i+1, err)
		}
	}
}

func TestAltPathDeduplication(t *testing.T) {
	// refineAltPath must not append a duplicate location (would loop).
	sample := Sample{
		NewPage("p1", `<html><body><p>v1</p></body></html>`),
		NewPage("p2", `<html><body><div><p>v2</p></div></body></html>`),
	}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		pe := dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("p") })
		return []*dom.Node{pe.FirstChild}
	})
	b := &Builder{Sample: sample, Oracle: oracle, DisableContext: true}
	res, err := b.BuildRule("v")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("should converge via alternative path: %v", res.Actions)
	}
	if len(res.Rule.Locations) != 2 {
		t.Errorf("locations = %v", res.Rule.Locations)
	}
	seen := map[string]bool{}
	for _, loc := range res.Rule.Locations {
		if seen[loc] {
			t.Errorf("duplicate location %q", loc)
		}
		seen[loc] = true
	}
}

func TestBuildRuleIterationCap(t *testing.T) {
	// An oracle that points at a *different* node each call can never be
	// satisfied; the loop must terminate at MaxIterations.
	page := NewPage("p", `<html><body><p>a</p><p>b</p><p>c</p><p>d</p></body></html>`)
	call := 0
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		ps := dom.FindAll(p.Doc, func(n *dom.Node) bool { return n.TagIs("p") })
		call++
		return []*dom.Node{ps[call%len(ps)].FirstChild}
	})
	b := &Builder{Sample: Sample{page}, Oracle: oracle, MaxIterations: 3}
	res, err := b.BuildRule("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) > 3 {
		t.Errorf("loop ran %d checks, cap is 3", len(res.Reports))
	}
}

func TestRefineMultivaluedSharedParentTextNodes(t *testing.T) {
	// Instances that are text children of one parent (no repetitive
	// element between them) diverge at the text() step itself.
	p := NewPage("p", `<html><body><td>alpha<br>beta<br>gamma<br></td></body></html>`)
	oracle := OracleFunc(func(component string, pg *Page) []*dom.Node {
		var out []*dom.Node
		dom.Walk(pg.Doc, func(n *dom.Node) bool {
			if n.Type == dom.TextNode {
				out = append(out, n)
			}
			return true
		})
		return out
	})
	b := &Builder{Sample: Sample{p}, Oracle: oracle}
	res, err := b.BuildRule("item")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("did not converge: %v\n%s", res.Actions, res.Rule.String())
	}
	if res.Rule.Multiplicity != rule.Multivalued {
		t.Error("text-sibling instances must become multivalued")
	}
	c, _ := res.Rule.Compile()
	if got := c.Apply(p.Doc); len(got) != 3 {
		t.Errorf("applied rule found %d values", len(got))
	}
}

func TestVerdictStringNames(t *testing.T) {
	names := map[Verdict]string{
		VerdictMatch:      "match",
		VerdictVoid:       "void",
		VerdictUnexpected: "unexpected",
		VerdictIncomplete: "incomplete",
		VerdictNeedsMulti: "needs-multivalued",
		VerdictAbsent:     "absent",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestCheckRejectsInvalidRule(t *testing.T) {
	bad := rule.Rule{Name: "9bad"}
	if _, err := Check(bad, paperSample(), runtimeOracle()); err == nil {
		t.Error("Check must reject invalid rules")
	}
}

func TestCandidateRejectsInvalidName(t *testing.T) {
	b := &Builder{Sample: paperSample(), Oracle: runtimeOracle()}
	if _, _, err := b.Candidate("not a name"); err == nil {
		t.Error("Candidate must validate the component name")
	}
}

func TestPathToRejectsBadNodes(t *testing.T) {
	if _, ok := PathTo(nil); ok {
		t.Error("nil node")
	}
	doc := dom.NewDocument()
	if _, ok := PathTo(doc); ok {
		t.Error("document node")
	}
	attr := &dom.Node{Type: dom.AttributeNode, Data: "href"}
	if _, ok := PathTo(attr); ok {
		t.Error("attribute node")
	}
}

func TestPathToDetachedFragment(t *testing.T) {
	// A node inside a detached fragment still gets a usable path anchored
	// at the fragment root.
	frag := dom.ParseFragment(`<tr><td>x</td></tr>`, "TABLE")
	td := dom.FindFirst(frag, func(n *dom.Node) bool { return n.TagIs("td") })
	p, ok := PathTo(td)
	if !ok {
		t.Fatal("detached path failed")
	}
	if !strings.Contains(p.String(), "TR[1]/TD[1]") {
		t.Errorf("fragment path = %s", p.String())
	}
}

func TestOptionalAndShiftCombination(t *testing.T) {
	// language is optional AND its position shifts when AKA is present:
	// both optionality and context refinement must fire.
	mk := func(uri string, aka, lang bool) *Page {
		var b strings.Builder
		b.WriteString(`<html><body><td>`)
		if aka {
			b.WriteString(`<b>Also Known As:</b> Other Title <br>`)
		}
		b.WriteString(`<b>Runtime:</b> 100 min <br>`)
		if lang {
			b.WriteString(`<b>Language:</b> English <br>`)
		}
		b.WriteString(`<b>Country:</b> USA <br>`)
		b.WriteString(`</td></body></html>`)
		return NewPage(uri, b.String())
	}
	sample := Sample{
		mk("p1", false, true),
		mk("p2", true, true),
		mk("p3", false, false),
		mk("p4", true, false),
	}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		lbl := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
			return n.Type == dom.TextNode && strings.TrimSpace(n.Data) == "Language:"
		})
		if lbl == nil {
			return nil
		}
		for s := lbl.Parent.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode && strings.TrimSpace(s.Data) != "" {
				return []*dom.Node{s}
			}
		}
		return nil
	})
	b := &Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("language")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("not converged: %v\n%s", res.Actions, res.FinalReport().Table())
	}
	if res.Rule.Optionality != rule.Optional {
		t.Error("must become optional")
	}
	if !strings.Contains(strings.Join(res.Rule.Locations, " "), "Language:") {
		t.Error("must use the contextual label")
	}
	// The rule must select nothing on pages without the component even
	// though positions shift.
	c, _ := res.Rule.Compile()
	if got := c.Apply(sample[3].Doc); len(got) != 0 {
		t.Errorf("rule selects %v on a page without language", got)
	}
}
