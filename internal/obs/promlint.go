package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-format parser and naming linter. The parser
// handles exactly the subset the PromWriter emits (which is the subset
// a scrape needs): # HELP, # TYPE, and sample lines with optional
// labels. The linter enforces the repo's metric naming conventions so
// CI catches a drive-by metric with the wrong prefix, a counter without
// _total, or a high-cardinality label before an operator's dashboard
// does.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of a label key ("" when absent).
func (s PromSample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// PromFamily is one parsed metric family: the TYPE/HELP header and the
// samples that belong to it (histogram _bucket/_sum/_count samples
// attach to their base family).
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm parses a text-format exposition into families, in exposition
// order. Sample lines without a preceding TYPE header are an error, as
// are samples that belong to no declared family — the writer always
// declares first.
func ParseProm(r io.Reader) ([]*PromFamily, error) {
	var out []*PromFamily
	fams := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				f := ensureFamily(fams, &out, fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
				}
				f := ensureFamily(fams, &out, fields[2])
				f.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := fams[baseName(s.Name)]
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func ensureFamily(fams map[string]*PromFamily, out *[]*PromFamily, name string) *PromFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	f := &PromFamily{Name: name}
	fams[name] = f
	*out = append(*out, f)
	return f
}

// baseName strips the histogram sample suffixes so _bucket/_sum/_count
// lines attach to their family.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) ([]Label, error) {
	var out []Label
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		out = append(out, Label{Key: key, Value: val.String()})
		body = strings.TrimPrefix(rest[i+1:], ",")
	}
	return out, nil
}

// LintOptions tunes the naming linter. Zero value: extractd defaults.
type LintOptions struct {
	// Prefix every metric name must carry (default "extractd_").
	Prefix string
	// AllowedLabels is the closed set of label keys — the cardinality
	// budget. Nil: DefaultAllowedLabels.
	AllowedLabels []string
	// GaugeSuffixes are the accepted trailing units/nouns for gauge
	// names. Nil: DefaultGaugeSuffixes.
	GaugeSuffixes []string
}

// DefaultAllowedLabels is the label-key allowlist: every key here is
// bounded by construction (endpoints, failure kinds, stages, states —
// never URIs, trace IDs or page content).
var DefaultAllowedLabels = []string{
	"endpoint", "kind", "event", "outcome", "stage", "state",
	"repo", "version", "active", "le", "goversion", "revision",
	// reason: streaming-extraction fallback reasons. Bounded by the
	// fixed set of compile refusals plus the three runtime reasons.
	"reason",
	// host: per-host fetch outcomes and breaker states. Bounded by the
	// set of origins the operator points extractd at, not by traffic.
	"host",
}

// DefaultGaugeSuffixes are the unit/noun suffixes gauges may end in.
var DefaultGaugeSuffixes = []string{
	"_seconds", "_bytes", "_ratio", "_pages", "_workers", "_depth",
	"_capacity", "_in_flight", "_info", "_jobs", "_repos", "_version",
	"_state",
}

func (o LintOptions) withDefaults() LintOptions {
	if o.Prefix == "" {
		o.Prefix = "extractd_"
	}
	if o.AllowedLabels == nil {
		o.AllowedLabels = DefaultAllowedLabels
	}
	if o.GaugeSuffixes == nil {
		o.GaugeSuffixes = DefaultGaugeSuffixes
	}
	return o
}

// Lint checks parsed families against the naming conventions and
// returns one problem string per violation (empty: clean).
//
// Rules: names are prefix + lowercase snake_case; counters end _total;
// gauges end in a known unit/noun suffix; histograms end in a unit
// suffix (_seconds or _bytes); every label key is in the allowlist; le
// appears only on histogram _bucket samples.
func Lint(fams []*PromFamily, opts LintOptions) []string {
	opts = opts.withDefaults()
	allowed := map[string]bool{}
	for _, l := range opts.AllowedLabels {
		allowed[l] = true
	}
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, f := range fams {
		if !strings.HasPrefix(f.Name, opts.Prefix) {
			addf("%s: missing %q prefix", f.Name, opts.Prefix)
		}
		if !validMetricName(f.Name) {
			addf("%s: not lowercase snake_case", f.Name)
		}
		if f.Help == "" {
			addf("%s: missing HELP", f.Name)
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				addf("%s: counter must end in _total", f.Name)
			}
		case "gauge":
			if !hasAnySuffix(f.Name, opts.GaugeSuffixes) {
				addf("%s: gauge must end in a unit suffix (one of %s)",
					f.Name, strings.Join(opts.GaugeSuffixes, " "))
			}
		case "histogram":
			if !hasAnySuffix(f.Name, []string{"_seconds", "_bytes"}) {
				addf("%s: histogram must end in _seconds or _bytes", f.Name)
			}
		case "":
			addf("%s: missing TYPE", f.Name)
		default:
			addf("%s: unknown type %q", f.Name, f.Type)
		}
		seen := map[string]bool{}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if seen[l.Key] {
					continue
				}
				seen[l.Key] = true
				if !allowed[l.Key] {
					addf("%s: label %q not in the cardinality allowlist", f.Name, l.Key)
				}
				if l.Key == "le" && !strings.HasSuffix(s.Name, "_bucket") {
					addf("%s: le label outside a histogram _bucket sample", f.Name)
				}
			}
		}
	}
	sort.Strings(problems)
	return problems
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

func hasAnySuffix(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
