// Package obs is extractd's observability toolkit: the shared pieces
// that turn the daemon from a black box into an operable fleet member.
//
//   - Trace IDs: one opaque ID minted (or accepted) at request ingress,
//     carried on the context through every pipeline stage and background
//     job, echoed in the X-Trace-Id response header, NDJSON result
//     lines, structured log lines and induction job records — so one
//     grep follows one page end to end.
//   - Histograms: fixed-bucket, atomic, zero-allocation latency
//     histograms safe for the ingest hot path (Observe is lock-free and
//     allocation-free; see the AllocsPerRun tests).
//   - Prometheus exposition: a text-format (version 0.0.4) writer and a
//     minimal parser/linter, so /metrics can serve the standard scrape
//     format without importing a client library, and CI can enforce the
//     metric naming conventions.
//   - Structured logs: log/slog constructors for the daemon's
//     -log-format/-log-level flags, plus a handler wrapper that stamps
//     every record with the context's trace ID.
//
// The package deliberately has no registry of live metric objects: the
// daemon's single source of truth is the service Snapshot struct, and
// both the JSON and the Prometheus views are rendered from it — the two
// cannot drift.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// traceKey is the context key carrying the request trace ID.
type traceKey struct{}

// NewTraceID mints a 128-bit random trace ID as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	// crypto/rand.Read never fails on supported platforms (it aborts the
	// process instead); the error return exists for interface reasons.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace returns the context's trace ID, or "".
func Trace(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// ValidTraceID reports whether an externally supplied trace ID is safe
// to adopt: 8–64 characters of [A-Za-z0-9_-]. Anything else (empty,
// overlong, control characters, log-injection attempts) is rejected and
// a fresh ID is minted instead.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
