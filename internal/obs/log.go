package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon's structured logger: format is "text" or
// "json" (the -log-format flag), level one of debug/info/warn/error
// (-log-level). Every record is stamped with the context's trace ID
// (attribute "trace") when one is present, so request logs, pipeline
// logs and induction job logs emitted under one request share a
// greppable key.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
	}
	return slog.New(&traceHandler{Handler: h}), nil
}

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests, library use) where request logs would be
// noise; the daemon installs a real one.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// traceHandler decorates records with the context trace ID.
type traceHandler struct{ slog.Handler }

// Handle implements slog.Handler.
func (h *traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := Trace(ctx); id != "" {
		r.AddAttrs(slog.String("trace", id))
	}
	return h.Handler.Handle(ctx, r)
}

// WithAttrs implements slog.Handler, keeping the trace decoration.
func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{Handler: h.Handler.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler, keeping the trace decoration.
func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{Handler: h.Handler.WithGroup(name)}
}
