package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two minted trace IDs collided")
	}
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("minted ID %q is not a valid 32-char trace ID", a)
	}

	ctx := WithTrace(context.Background(), a)
	if got := Trace(ctx); got != a {
		t.Fatalf("Trace = %q, want %q", got, a)
	}
	if got := Trace(context.Background()); got != "" {
		t.Fatalf("Trace on a bare context = %q, want empty", got)
	}
	if WithTrace(context.Background(), "") != context.Background() {
		t.Fatal("WithTrace(\"\") should return the context unchanged")
	}

	valid := []string{"abcd1234", "A-b_8901", strings.Repeat("f", 64)}
	invalid := []string{"", "short", strings.Repeat("f", 65), "has space8", "inject\n90", "héx45678"}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-5.65) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.65", s.Sum)
	}
	wantCounts := []int64{2, 1, 2} // ≤0.1, ≤1, +Inf
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Buckets[2].LE != 0 {
		t.Errorf("last bucket LE = %v, want 0 (the JSON-safe +Inf marker)", s.Buckets[2].LE)
	}
	// The snapshot must survive json.Marshal — it is served by /metrics.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram(nil)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
}

func TestPromWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("extractd_pages_total", "Pages.", 42)
	p.Gauge("extractd_pool_workers", "Workers.", 4)
	p.Family("extractd_requests_total", "counter", "Requests with \"quotes\"\nand newline.")
	p.Sample("extractd_requests_total", []Label{{Key: "endpoint", Value: `a"b\c` + "\n"}}, 7)
	p.Histogram("extractd_lat_seconds", "Latency.", HistogramSnapshot{
		Count: 3, Sum: 0.25,
		Buckets: []HistogramBucket{{LE: 0.1, Count: 2}, {LE: 0, Count: 1}},
	})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP extractd_pages_total Pages.\n# TYPE extractd_pages_total counter\nextractd_pages_total 42\n",
		"# TYPE extractd_pool_workers gauge\nextractd_pool_workers 4\n",
		`extractd_requests_total{endpoint="a\"b\\c\n"} 7`,
		"Requests with \"quotes\"\\nand newline.",
		`extractd_lat_seconds_bucket{le="0.1"} 2`,
		`extractd_lat_seconds_bucket{le="+Inf"} 3`, // cumulative
		"extractd_lat_seconds_sum 0.25",
		"extractd_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestParsePromRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("extractd_pages_total", "Pages.", 42)
	p.Histogram("extractd_lat_seconds", "Latency.", HistogramSnapshot{
		Count: 3, Sum: 0.25,
		Buckets: []HistogramBucket{{LE: 0.1, Count: 2}, {LE: 0, Count: 1}},
	}, Label{Key: "stage", Value: "extract"})
	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2", len(fams))
	}
	if fams[0].Name != "extractd_pages_total" || fams[0].Type != "counter" ||
		fams[0].Help != "Pages." || len(fams[0].Samples) != 1 || fams[0].Samples[0].Value != 42 {
		t.Fatalf("counter family mismatch: %+v", fams[0])
	}
	h := fams[1]
	if h.Type != "histogram" || len(h.Samples) != 4 { // 2 buckets + sum + count
		t.Fatalf("histogram family mismatch: %+v", h)
	}
	if got := h.Samples[1].Label("le"); got != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", got)
	}
	if got := h.Samples[0].Label("stage"); got != "extract" {
		t.Fatalf("stage label = %q, want extract", got)
	}

	if _, err := ParseProm(strings.NewReader("orphan_sample 1\n")); err == nil {
		t.Fatal("sample without a declared family should fail to parse")
	}
}

func TestLintRules(t *testing.T) {
	exposition := `# HELP wrong_total requests
# TYPE wrong_total counter
wrong_total 1
# HELP extractd_pages counter without suffix
# TYPE extractd_pages counter
extractd_pages{uri="x"} 1
# HELP extractd_pool_workers ok gauge
# TYPE extractd_pool_workers gauge
extractd_pool_workers 4
# HELP extractd_lat histogram without unit
# TYPE extractd_lat histogram
extractd_lat_bucket{le="+Inf"} 1
extractd_lat_sum 1
extractd_lat_count 1
`
	fams, err := ParseProm(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	problems := Lint(fams, LintOptions{})
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		`wrong_total: missing "extractd_" prefix`,
		"extractd_pages: counter must end in _total",
		`extractd_pages: label "uri" not in the cardinality allowlist`,
		"extractd_lat: histogram must end in _seconds or _bytes",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint problems missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "extractd_pool_workers") {
		t.Errorf("clean gauge flagged:\n%s", joined)
	}
}

func TestNewLoggerTraceStamping(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTrace(context.Background(), "abcdef1234567890")
	log.InfoContext(ctx, "hello", "k", "v")
	log.Info("no-trace")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["trace"] != "abcdef1234567890" || first["k"] != "v" {
		t.Fatalf("traced record missing attrs: %v", first)
	}
	if strings.Contains(lines[1], `"trace":`) {
		t.Fatalf("untraced record carries a trace attr: %s", lines[1])
	}

	// Debug is below the configured level.
	buf.Reset()
	log.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug record leaked through info level: %s", buf.String())
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Fatal("unknown format should error")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("unknown level should error")
	}
}

func TestNewLoggerWithAttrsKeepsTrace(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTrace(context.Background(), "abcdef1234567890")
	log.With("component", "test").InfoContext(ctx, "msg")
	if !strings.Contains(buf.String(), `"trace":"abcdef1234567890"`) {
		t.Fatalf("With() dropped the trace decoration: %s", buf.String())
	}
}
