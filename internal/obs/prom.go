package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), written by hand:
// the container bakes in no client library, and the daemon needs only
// the write half — families of counters, gauges and histograms rendered
// from an already-consistent snapshot.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one metric label pair.
type Label struct{ Key, Value string }

// PromWriter renders metric families in the Prometheus text format.
// Errors are sticky: the first write failure is remembered and every
// later call is a no-op, so call sites stay linear and check Err once.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter writes the exposition to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) flush() {
	if p.err == nil && len(p.buf) > 0 {
		_, p.err = p.w.Write(p.buf)
	}
	p.buf = p.buf[:0]
}

// Family starts a metric family: the # HELP and # TYPE header lines.
// typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, escapeHelp(help)...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
	p.flush()
}

// Sample writes one sample line of the current family.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	if p.err != nil {
		return
	}
	p.buf = appendSample(p.buf, name, labels, value)
	p.flush()
}

// Counter writes a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, value float64, labels ...Label) {
	p.Family(name, "counter", help)
	p.Sample(name, labels, value)
}

// Gauge writes a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, value float64, labels ...Label) {
	p.Family(name, "gauge", help)
	p.Sample(name, labels, value)
}

// Histogram writes a complete histogram family from a snapshot: the
// cumulative _bucket series (le up to +Inf), _sum and _count.
func (p *PromWriter) Histogram(name, help string, snap HistogramSnapshot, labels ...Label) {
	p.Family(name, "histogram", help)
	p.HistogramSamples(name, labels, snap)
}

// HistogramSamples writes one labeled series of an already-started
// histogram family (per-stage histograms share one family).
func (p *PromWriter) HistogramSamples(name string, labels []Label, snap HistogramSnapshot) {
	if p.err != nil {
		return
	}
	cum := int64(0)
	bl := make([]Label, len(labels), len(labels)+1)
	copy(bl, labels)
	bl = append(bl, Label{})
	for _, b := range snap.Buckets {
		cum += b.Count
		bl[len(bl)-1] = Label{Key: "le", Value: formatLE(b.LE)}
		p.buf = appendSample(p.buf, name+"_bucket", bl, float64(cum))
	}
	p.buf = appendSample(p.buf, name+"_sum", labels, snap.Sum)
	p.buf = appendSample(p.buf, name+"_count", labels, float64(snap.Count))
	p.flush()
}

func appendSample(buf []byte, name string, labels []Label, value float64) []byte {
	buf = append(buf, name...)
	if len(labels) > 0 {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, l.Key...)
			buf = append(buf, '=', '"')
			buf = append(buf, escapeLabel(l.Value)...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, value, 'g', -1, 64)
	buf = append(buf, '\n')
	return buf
}

// formatLE renders a bucket bound the way Prometheus expects: "+Inf"
// for the last bucket, which snapshots carry as LE 0 (the JSON-safe
// convention — JSON cannot represent infinity).
func formatLE(v float64) string {
	if v == 0 || math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
