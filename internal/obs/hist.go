package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram built for hot paths:
// Observe is lock-free and allocation-free (atomic adds over
// preallocated buckets, a CAS loop for the float sum), so per-page
// pipeline instrumentation costs a few atomic operations and nothing
// else. Buckets are upper bounds in ascending order; the implicit last
// bucket is +Inf. The zero Histogram is unusable — construct with
// NewHistogram.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefaultLatencyBuckets is the shared latency bucket layout, in seconds:
// a coarse log-ish scale from sub-millisecond page extractions to
// multi-second whole-run stalls.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// NewHistogram creates a histogram over the given ascending upper
// bounds (nil: DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Safe for concurrent use; never allocates.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~16) and the scan beats a
	// binary search's branch misses at this size — and neither allocates.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramBucket is one bucket of a snapshot: the inclusive upper
// bound and the count of observations in this bucket alone (not
// cumulative — the Prometheus writer accumulates at render time).
// LE 0 marks the +Inf bucket: snapshots are marshalled as JSON in
// /metrics and JSON has no representation for infinity.
type HistogramBucket struct {
	LE    float64 `json:"le,omitempty"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot copies the histogram counters. Concurrent Observes may land
// between bucket reads; each individual counter is still exact and the
// skew is at most the handful of observations in flight.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]HistogramBucket, len(h.counts)),
	}
	for i := range h.counts {
		le := 0.0 // the +Inf bucket, in the JSON-safe convention
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = HistogramBucket{LE: le, Count: h.counts[i].Load()}
	}
	return s
}
