package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/rule"
)

// ForumProfile configures the forum-threads cluster: discussion pages
// whose posts are *multivalued mixed* components (each post value is a
// container holding text interleaved with markup) — the combination of
// §3.4's multiplicity and format refinements in one component.
type ForumProfile struct {
	Seed     int64
	Pages    int
	MaxPosts int
	// ProbQuote makes a post embed a <BLOCKQUOTE>, keeping its value
	// mixed rather than pure text.
	ProbQuote float64
	// ProbSticky prepends a sticky notice before the post list, shifting
	// positions.
	ProbSticky float64
	Reparse    bool
}

// DefaultForumProfile returns the standard mix.
func DefaultForumProfile(seed int64, pages int) ForumProfile {
	return ForumProfile{
		Seed: seed, Pages: pages, MaxPosts: 5,
		ProbQuote: 0.5, ProbSticky: 0.3, Reparse: true,
	}
}

var forumComponents = []ComponentSpec{
	{Name: "thread-title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "post", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Mixed},
	{Name: "post-author", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Text},
	{Name: "reply-count", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
}

var threadTopics = []string{
	"Best index for range scans", "Parser rejects my markup",
	"XPath position predicates", "Migrating a static site",
	"Monitoring competitor prices", "Schema evolution woes",
}

var postBodies = []string{
	"Have you tried rebuilding with a composite key",
	"This worked for me after clearing the cache",
	"The documentation covers this in chapter four",
	"I measured both and the difference was negligible",
	"Consider normalizing the table first",
}

// GenerateForum builds the forum-threads cluster.
func GenerateForum(p ForumProfile) *Cluster {
	r := rng(p.Seed)
	if p.Pages <= 0 {
		p.Pages = 10
	}
	if p.MaxPosts < 1 {
		p.MaxPosts = 1
	}
	c := &Cluster{
		Name:       "forum-threads",
		Components: forumComponents,
		truth:      map[*corePage]map[string][]*domNode{},
	}
	for i := 0; i < p.Pages; i++ {
		uri := fmt.Sprintf("http://forum.example/thread/%05d", 10000+r.Intn(89999))
		page, truth := generateForumPage(r, p, uri)
		c.Pages = append(c.Pages, page)
		c.truth[page] = truth
	}
	return c
}

func generateForumPage(r *rand.Rand, p ForumProfile, uri string) (*corePage, map[string][]*domNode) {
	pb := newPageBuilder()
	main := el(pb.body, "DIV", attr("id", "thread"))

	h2 := el(main, "H2")
	pb.record("thread-title", txt(h2, pick(r, threadTopics)))

	meta := el(main, "P", attr("class", "meta"))
	b := el(meta, "B")
	txt(b, "Replies:")
	pb.record("reply-count", txt(meta, fmt.Sprintf(" %d ", r.Intn(40))))

	if r.Float64() < p.ProbSticky {
		sticky := el(main, "DIV", attr("class", "sticky"))
		txt(sticky, "Sticky: please read the forum rules before posting.")
	}

	posts := el(main, "DIV", attr("class", "posts"))
	for n := 1 + r.Intn(p.MaxPosts); n > 0; n-- {
		post := el(posts, "DIV", attr("class", "post"))
		head := el(post, "P", attr("class", "post-head"))
		span := el(head, "SPAN", attr("class", "author"))
		pb.record("post-author", txt(span, personName(r)))
		txt(head, fmt.Sprintf(" wrote on 2006-%02d-%02d:", 1+r.Intn(12), 1+r.Intn(28)))

		body := el(post, "DIV", attr("class", "post-body"))
		if r.Float64() < p.ProbQuote {
			q := el(body, "BLOCKQUOTE")
			txt(q, pick(r, postBodies)+"?")
			txt(body, " "+pick(r, postBodies)+".")
		} else {
			txt(body, pick(r, postBodies)+".")
		}
		// The post component's value is the whole body container: mixed
		// when a quote is embedded, plain otherwise — the oracle always
		// designates the container, as a user selecting the highlighted
		// block would.
		pb.record("post", body)
	}

	footer := el(main, "P", attr("class", "footer"))
	txt(footer, "Powered by forum.example")
	return pb.finish(uri, p.Reparse)
}
