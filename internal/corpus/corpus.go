// Package corpus generates synthetic data-intensive Web sites with
// controlled structural discrepancies and exact ground truth. It replaces
// the live imdb.com pages the paper worked on (and the human operator
// pointing at values) with a deterministic, seedable equivalent that
// exercises every discrepancy class of §3.4:
//
//   - optional fields that shift the positions of later content
//     (the "Also Known As:" effect of Figure 4);
//   - components missing from some pages (optionality);
//   - multivalued components with varying instance counts;
//   - values that are pure text in some pages and text+markup in others
//     (format promotion);
//   - alternative page layouts inside one cluster (alternative paths);
//   - configurable nesting depth (flat vs fine-grained documents, §7).
//
// Every generated page carries a ground-truth map from component name to
// the exact DOM nodes of its value, which backs the scripted Oracle.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// ComponentSpec declares a component of a generated cluster together with
// the properties a correctly induced rule should end up with — the
// reference answer for the experiments.
type ComponentSpec struct {
	Name         string
	Optionality  rule.Optionality
	Multiplicity rule.Multiplicity
	Format       rule.Format
}

// Cluster is a generated page cluster: pages, per-page ground truth and
// the component inventory.
type Cluster struct {
	Name       string
	Pages      []*core.Page
	Components []ComponentSpec
	truth      map[*core.Page]map[string][]*dom.Node
}

// Truth returns the ground-truth value nodes of a component in a page
// (nil when absent).
func (c *Cluster) Truth(p *core.Page, component string) []*dom.Node {
	m := c.truth[p]
	if m == nil {
		return nil
	}
	return m[component]
}

// TruthStrings returns the normalized string values of a component in a
// page — the representation used for file-based evaluation where node
// identity is unavailable.
func (c *Cluster) TruthStrings(p *core.Page, component string) []string {
	nodes := c.Truth(p, component)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, textutil.NormalizeSpace(xpath.NodeStringValue(n)))
	}
	return out
}

// Oracle returns the scripted stand-in for the human operator: selecting
// a component value in a page answers straight from ground truth.
func (c *Cluster) Oracle() core.Oracle {
	return core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		return c.Truth(p, component)
	})
}

// Spec looks up a component spec by name.
func (c *Cluster) Spec(name string) (ComponentSpec, bool) {
	for _, s := range c.Components {
		if s.Name == name {
			return s, true
		}
	}
	return ComponentSpec{}, false
}

// ComponentNames lists the cluster's components in declaration order.
func (c *Cluster) ComponentNames() []string {
	out := make([]string, len(c.Components))
	for i, s := range c.Components {
		out[i] = s.Name
	}
	return out
}

// Split partitions the cluster's pages into a working sample of size k and
// a held-out evaluation set, preserving order (pages are already shuffled
// at generation time).
func (c *Cluster) Split(k int) (sample core.Sample, held []*core.Page) {
	if k > len(c.Pages) {
		k = len(c.Pages)
	}
	return core.Sample(c.Pages[:k]), c.Pages[k:]
}

// Short aliases keep the generator code readable.
type (
	corePage = core.Page
	domNode  = dom.Node
)

func attr(k, v string) dom.Attribute { return dom.Attribute{Key: k, Val: v} }

// pageBuilder accumulates a page under construction together with its
// ground truth.
type pageBuilder struct {
	doc   *dom.Node
	body  *dom.Node
	truth map[string][]*dom.Node
}

func newPageBuilder() *pageBuilder {
	doc := dom.NewDocument()
	html := dom.NewElement("HTML")
	doc.AppendChild(html)
	head := dom.NewElement("HEAD")
	html.AppendChild(head)
	body := dom.NewElement("BODY")
	html.AppendChild(body)
	return &pageBuilder{doc: doc, body: body, truth: map[string][]*dom.Node{}}
}

func (pb *pageBuilder) record(component string, nodes ...*dom.Node) {
	pb.truth[component] = append(pb.truth[component], nodes...)
}

// el creates an element, appends it to parent and returns it.
func el(parent *dom.Node, tag string, attrs ...dom.Attribute) *dom.Node {
	e := dom.NewElement(tag, attrs...)
	parent.AppendChild(e)
	return e
}

// txt creates a text node under parent and returns it.
func txt(parent *dom.Node, s string) *dom.Node {
	t := dom.NewText(s)
	parent.AppendChild(t)
	return t
}

// labeled appends `<B>label</B> value <BR>` to parent, returning the value
// text node — the info-row idiom of Figure 4.
func labeled(parent *dom.Node, label, value string) *dom.Node {
	b := el(parent, "B")
	txt(b, label)
	v := txt(parent, " "+value+" ")
	el(parent, "BR")
	return v
}

// wrapDepth nests content inside depth extra DIV levels — the knob for the
// fine-grained vs flat structure experiment (§7).
func wrapDepth(parent *dom.Node, depth int) *dom.Node {
	cur := parent
	for i := 0; i < depth; i++ {
		cur = el(cur, "DIV", dom.Attribute{Key: "class", Val: fmt.Sprintf("lvl%d", i)})
	}
	return cur
}

// finish renders the built page. reparse=true serializes and re-parses the
// document so that the checked tree went through the real HTML pipeline;
// ground-truth pointers are re-resolved into the fresh tree via their
// precise paths, keeping node identity consistent with what rule
// evaluation sees.
func (pb *pageBuilder) finish(uri string, reparse bool) (*core.Page, map[string][]*dom.Node) {
	if !reparse {
		return &core.Page{URI: uri, Doc: pb.doc}, pb.truth
	}
	html := dom.Render(pb.doc)
	doc2 := dom.Parse(html)
	truth2 := make(map[string][]*dom.Node, len(pb.truth))
	for comp, nodes := range pb.truth {
		for _, n := range nodes {
			p, ok := core.PathTo(n)
			if !ok {
				continue
			}
			c, err := p.Compile()
			if err != nil {
				continue
			}
			if m := c.SelectLocation(doc2); len(m) > 0 {
				truth2[comp] = append(truth2[comp], m[0])
			}
		}
	}
	return &core.Page{URI: uri, Doc: doc2}, truth2
}

// rng returns a deterministic source for a seed.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
