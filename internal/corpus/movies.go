package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/rule"
)

// MovieProfile configures the imdb-movies cluster generator. Probabilities
// are per page; the zero value of each knob disables the corresponding
// discrepancy.
type MovieProfile struct {
	Seed  int64
	Pages int

	// ProbAKA inserts an "Also Known As:" field before Runtime, shifting
	// later text positions (the Figure 4 page-c effect).
	ProbAKA float64
	// ProbLanguage controls presence of the optional language field.
	ProbLanguage float64
	// ProbTrivia controls presence of the optional trivia field, whose
	// value mixes text and <I> markup in some pages.
	ProbTrivia float64
	// ProbTriviaMarkup, given trivia present, makes its value mixed.
	ProbTriviaMarkup float64
	// MaxActors bounds the multivalued actor list (at least 1).
	MaxActors int
	// MaxGenres bounds the multivalued genre list (at least 1).
	MaxGenres int
	// ProbAltLayout renders the page with the alternative layout, whose
	// rating sits in a structurally different place (drives the
	// alternative-path refinement).
	ProbAltLayout float64
	// NestingDepth wraps the main content in this many extra DIV levels.
	NestingDepth int
	// FieldContainers renders each info field inside its own DIV
	// container (with absent optional fields leaving an empty container),
	// modelling template-generated fine-grained structure; when false the
	// info block is the flat label/text/BR run of Figure 4, where
	// optional fields shift later positions. This is the knob behind the
	// §7 claim that Retrozilla "is empirically more effective on
	// fine-grained HTML structures … than on poorly structured documents".
	FieldContainers bool
	// FillerRows is the number of boilerplate rows before the info row.
	FillerRows int
	// Reparse pushes every page through render→parse so rules run against
	// trees produced by the real HTML pipeline.
	Reparse bool
}

// DefaultMovieProfile mirrors the discrepancy mix visible in the paper's
// examples: occasional AKA shifts, an optional field, multivalued lists
// and a minority alternative layout.
func DefaultMovieProfile(seed int64, pages int) MovieProfile {
	return MovieProfile{
		Seed:             seed,
		Pages:            pages,
		ProbAKA:          0.25,
		ProbLanguage:     0.7,
		ProbTrivia:       0.5,
		ProbTriviaMarkup: 0.5,
		MaxActors:        6,
		MaxGenres:        3,
		ProbAltLayout:    0.15,
		NestingDepth:     0,
		FillerRows:       5,
		Reparse:          true,
	}
}

var movieComponents = []ComponentSpec{
	{Name: "title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "runtime", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "country", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "language", Optionality: rule.Optional, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "director", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "genre", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Text},
	{Name: "actor", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Text},
	{Name: "rating", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "trivia", Optionality: rule.Optional, Multiplicity: rule.SingleValued, Format: rule.Mixed},
}

var (
	titleWords = []string{
		"Silent", "Crimson", "Broken", "Golden", "Midnight", "Electric",
		"Forgotten", "Burning", "Hollow", "Distant", "Savage", "Gentle",
	}
	titleNouns = []string{
		"Horizon", "Empire", "Garden", "Station", "Harbor", "Winter",
		"Voyage", "Echo", "Covenant", "Paradox", "Meridian", "Lantern",
	}
	firstNames = []string{
		"Ava", "Liam", "Noah", "Emma", "Oliver", "Sophia", "Mason",
		"Isabella", "Lucas", "Mia", "Ethan", "Clara", "Jonas", "Nora",
	}
	lastNames = []string{
		"Archer", "Bennett", "Calloway", "Dupont", "Eriksen", "Falk",
		"Garnier", "Holt", "Ivarsson", "Janssen", "Keller", "Laurent",
	}
	countries = []string{"USA", "UK", "France", "Italy", "Germany", "Japan", "Spain", "Canada"}
	languages = []string{"English", "French", "Italian", "German", "Japanese", "Spanish"}
	genres    = []string{"Drama", "Comedy", "Thriller", "Sci-Fi", "Romance", "Documentary", "Horror", "Western"}
	trivias   = []string{
		"The production moved twice during filming",
		"Most exterior scenes were shot at dawn",
		"The score was recorded in a single session",
		"Several props were borrowed from a museum",
	}
)

func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

func personName(r *rand.Rand) string {
	return pick(r, firstNames) + " " + pick(r, lastNames)
}

func movieTitle(r *rand.Rand) string {
	return "The " + pick(r, titleWords) + " " + pick(r, titleNouns)
}

// GenerateMovies builds the imdb-movies cluster.
func GenerateMovies(p MovieProfile) *Cluster {
	r := rng(p.Seed)
	if p.Pages <= 0 {
		p.Pages = 10
	}
	if p.MaxActors < 1 {
		p.MaxActors = 1
	}
	if p.MaxGenres < 1 {
		p.MaxGenres = 1
	}
	c := &Cluster{
		Name:       "imdb-movies",
		Components: movieComponents,
		truth:      map[*corePage]map[string][]*domNode{},
	}
	for i := 0; i < p.Pages; i++ {
		uri := fmt.Sprintf("http://movies.example/title/tt%07d/", 100000+r.Intn(900000))
		page, truth := generateMoviePage(r, p, uri)
		c.Pages = append(c.Pages, page)
		c.truth[page] = truth
	}
	return c
}

func generateMoviePage(r *rand.Rand, p MovieProfile, uri string) (*corePage, map[string][]*domNode) {
	pb := newPageBuilder()
	content := wrapDepth(pb.body, p.NestingDepth)

	// Header block: title as H1, boilerplate nav.
	h1 := el(content, "H1")
	pb.record("title", txt(h1, movieTitle(r)))
	nav := el(content, "DIV", attr("class", "nav"))
	for _, item := range []string{"Home", "Top 250", "Coming Soon"} {
		a := el(nav, "A", attr("href", "/"+item))
		txt(a, item)
	}

	alt := r.Float64() < p.ProbAltLayout
	if alt {
		generateAltLayout(r, p, pb, content)
	} else {
		generateMainLayout(r, p, pb, content)
	}

	// Footer boilerplate.
	footer := el(content, "DIV", attr("class", "footer"))
	txt(footer, "Copyright 2006 movies.example")
	return pb.finish(uri, p.Reparse)
}

// generateMainLayout emits the Figure 4 style layout: a layout table whose
// info row holds <B>Label:</B> value <BR> sequences, followed by genre
// links, an actor list, rating and trivia blocks.
func generateMainLayout(r *rand.Rand, p MovieProfile, pb *pageBuilder, content *domNode) {
	table := el(content, "TABLE", attr("class", "layout"))
	for i := 0; i < p.FillerRows; i++ {
		tr := el(table, "TR")
		td := el(tr, "TD")
		txt(td, fmt.Sprintf("boilerplate %d", i+1))
	}
	infoTR := el(table, "TR")
	infoTD := el(infoTR, "TD")
	if p.FieldContainers {
		// Fine-grained structure: one container per field, kept even when
		// the optional field is absent, so positions never shift.
		field := func(label, value string, present bool) *domNode {
			div := el(infoTD, "DIV", attr("class", "field"))
			if !present {
				return nil
			}
			b := el(div, "B")
			txt(b, label)
			span := el(div, "SPAN")
			return txt(span, value)
		}
		field("Also Known As:", movieTitle(r)+" (International: English title)",
			r.Float64() < p.ProbAKA)
		pb.record("runtime", field("Runtime:", fmt.Sprintf("%d min", 70+r.Intn(120)), true))
		pb.record("country", field("Country:", pick(r, countries), true))
		if v := field("Language:", pick(r, languages), r.Float64() < p.ProbLanguage); v != nil {
			pb.record("language", v)
		}
		pb.record("director", field("Director:", personName(r), true))
	} else {
		if r.Float64() < p.ProbAKA {
			labeled(infoTD, "Also Known As:", movieTitle(r)+" (International: English title)")
		}
		pb.record("runtime", labeled(infoTD, "Runtime:", fmt.Sprintf("%d min", 70+r.Intn(120))))
		pb.record("country", labeled(infoTD, "Country:", pick(r, countries)))
		if r.Float64() < p.ProbLanguage {
			pb.record("language", labeled(infoTD, "Language:", pick(r, languages)))
		}
		pb.record("director", labeled(infoTD, "Director:", personName(r)))
	}

	// Genres: consecutive <A> links inside a genre paragraph.
	genreP := el(content, "P", attr("class", "genres"))
	b := el(genreP, "B")
	txt(b, "Genre:")
	seen := map[string]bool{}
	for n := 1 + r.Intn(p.MaxGenres); n > 0; n-- {
		g := pick(r, genres)
		if seen[g] {
			continue
		}
		seen[g] = true
		a := el(genreP, "A", attr("href", "/genre/"+g))
		pb.record("genre", txt(a, g))
	}

	// Actors: UL/LI list.
	castDiv := el(content, "DIV", attr("class", "cast"))
	h3 := el(castDiv, "H3")
	txt(h3, "Cast")
	ul := el(castDiv, "UL")
	for n := 1 + r.Intn(p.MaxActors); n > 0; n-- {
		li := el(ul, "LI")
		pb.record("actor", txt(li, personName(r)))
	}

	// Rating: a dedicated block, main-layout position.
	ratingDiv := el(content, "DIV", attr("class", "rating"))
	span := el(ratingDiv, "SPAN")
	pb.record("rating", txt(span, fmt.Sprintf("%.1f/10", 1+r.Float64()*9)))
	txt(ratingDiv, fmt.Sprintf(" (%d votes)", 100+r.Intn(90000)))

	generateTrivia(r, p, pb, content)
}

// generateAltLayout is the minority page variant: the info block uses a
// DL definition list (labels in DT, values in DD) and the rating hangs in
// a structurally different place with no constant preceding label, so
// positional and contextual strategies both miss it and only an
// alternative path can locate it.
func generateAltLayout(r *rand.Rand, p MovieProfile, pb *pageBuilder, content *domNode) {
	// Rating first, bare inside a table cell.
	top := el(content, "TABLE", attr("class", "althead"))
	tr := el(top, "TR")
	td1 := el(tr, "TD")
	txt(td1, fmt.Sprintf("#%d of 250", 1+r.Intn(250)))
	td2 := el(tr, "TD")
	em := el(td2, "EM")
	pb.record("rating", txt(em, fmt.Sprintf("%.1f/10", 1+r.Float64()*9)))

	dl := el(content, "DL", attr("class", "info"))
	put := func(label, value string) *domNode {
		dt := el(dl, "DT")
		txt(dt, label)
		dd := el(dl, "DD")
		return txt(dd, value)
	}
	if r.Float64() < p.ProbAKA {
		put("Also Known As:", movieTitle(r))
	}
	pb.record("runtime", put("Runtime:", fmt.Sprintf("%d min", 70+r.Intn(120))))
	pb.record("country", put("Country:", pick(r, countries)))
	if r.Float64() < p.ProbLanguage {
		pb.record("language", put("Language:", pick(r, languages)))
	}
	pb.record("director", put("Director:", personName(r)))

	genreP := el(content, "P", attr("class", "genres"))
	bb := el(genreP, "B")
	txt(bb, "Genre:")
	seen := map[string]bool{}
	for n := 1 + r.Intn(p.MaxGenres); n > 0; n-- {
		g := pick(r, genres)
		if seen[g] {
			continue
		}
		seen[g] = true
		a := el(genreP, "A", attr("href", "/genre/"+g))
		pb.record("genre", txt(a, g))
	}

	castDiv := el(content, "DIV", attr("class", "cast"))
	h3 := el(castDiv, "H3")
	txt(h3, "Cast")
	ul := el(castDiv, "UL")
	for n := 1 + r.Intn(p.MaxActors); n > 0; n-- {
		li := el(ul, "LI")
		pb.record("actor", txt(li, personName(r)))
	}

	generateTrivia(r, p, pb, content)
}

// generateTrivia emits the optional, possibly mixed trivia block. The
// component value is the containing DIV when markup is present; the
// oracle designates the container in that case, the inner text otherwise
// (mirroring what a user would click).
func generateTrivia(r *rand.Rand, p MovieProfile, pb *pageBuilder, content *domNode) {
	if r.Float64() >= p.ProbTrivia {
		return
	}
	outer := el(content, "DIV", attr("class", "trivia"))
	h4 := el(outer, "H4")
	txt(h4, "Trivia")
	val := el(outer, "DIV", attr("class", "trivia-text"))
	if r.Float64() < p.ProbTriviaMarkup {
		txt(val, pick(r, trivias)+" — see ")
		i := el(val, "I")
		txt(i, movieTitle(r))
		txt(val, " for details.")
		pb.record("trivia", val)
	} else {
		pb.record("trivia", txt(val, pick(r, trivias)+"."))
	}
}
