package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/rule"
)

// BookProfile configures the books cluster: product-style pages with a
// price (the paper's data-integration motivation), multivalued authors
// and an optional publisher.
type BookProfile struct {
	Seed          int64
	Pages         int
	ProbPublisher float64
	ProbSubtitle  float64 // shifts the author block when present
	MaxAuthors    int
	Reparse       bool
}

// DefaultBookProfile returns a balanced discrepancy mix.
func DefaultBookProfile(seed int64, pages int) BookProfile {
	return BookProfile{
		Seed: seed, Pages: pages,
		ProbPublisher: 0.6, ProbSubtitle: 0.3, MaxAuthors: 3, Reparse: true,
	}
}

var bookComponents = []ComponentSpec{
	{Name: "book-title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "author", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Text},
	{Name: "price", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "isbn", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "publisher", Optionality: rule.Optional, Multiplicity: rule.SingleValued, Format: rule.Text},
}

var (
	bookAdjectives = []string{"Practical", "Modern", "Advanced", "Essential", "Applied", "Elegant"}
	bookTopics     = []string{"Databases", "Compilers", "Networks", "Cryptography", "Algorithms", "Typography"}
)

// GenerateBooks builds the books cluster.
func GenerateBooks(p BookProfile) *Cluster {
	r := rng(p.Seed)
	if p.Pages <= 0 {
		p.Pages = 10
	}
	if p.MaxAuthors < 1 {
		p.MaxAuthors = 1
	}
	c := &Cluster{
		Name:       "books",
		Components: bookComponents,
		truth:      map[*corePage]map[string][]*domNode{},
	}
	for i := 0; i < p.Pages; i++ {
		uri := fmt.Sprintf("http://books.example/item/%06d", 100000+r.Intn(899999))
		page, truth := generateBookPage(r, p, uri)
		c.Pages = append(c.Pages, page)
		c.truth[page] = truth
	}
	return c
}

func generateBookPage(r *rand.Rand, p BookProfile, uri string) (*corePage, map[string][]*domNode) {
	pb := newPageBuilder()
	main := el(pb.body, "DIV", attr("id", "main"))

	h2 := el(main, "H2")
	pb.record("book-title", txt(h2, pick(r, bookAdjectives)+" "+pick(r, bookTopics)))
	if r.Float64() < p.ProbSubtitle {
		sub := el(main, "H3")
		txt(sub, "A hands-on guide")
	}

	byline := el(main, "P", attr("class", "byline"))
	txt(byline, "by ")
	for n := 1 + r.Intn(p.MaxAuthors); n > 0; n-- {
		span := el(byline, "SPAN", attr("class", "author"))
		pb.record("author", txt(span, personName(r)))
		if n > 1 {
			txt(byline, ", ")
		}
	}

	detail := el(main, "TABLE", attr("class", "detail"))
	row := func(label, value string) *domNode {
		tr := el(detail, "TR")
		th := el(tr, "TH")
		txt(th, label)
		td := el(tr, "TD")
		return txt(td, value)
	}
	pb.record("price", row("Price:", fmt.Sprintf("$%d.%02d", 9+r.Intn(90), r.Intn(100))))
	pb.record("isbn", row("ISBN:", fmt.Sprintf("978-%d-%04d-%04d-%d",
		r.Intn(10), r.Intn(10000), r.Intn(10000), r.Intn(10))))
	if r.Float64() < p.ProbPublisher {
		pb.record("publisher", row("Publisher:", pick(r, lastNames)+" Press"))
	}

	related := el(main, "UL", attr("class", "related"))
	for i := 0; i < 2+r.Intn(3); i++ {
		li := el(related, "LI")
		a := el(li, "A", attr("href", fmt.Sprintf("/item/%06d", r.Intn(999999))))
		txt(a, pick(r, bookAdjectives)+" "+pick(r, bookTopics))
	}
	return pb.finish(uri, p.Reparse)
}
