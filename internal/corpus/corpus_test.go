package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
)

func TestGenerateMoviesDeterministic(t *testing.T) {
	a := GenerateMovies(DefaultMovieProfile(42, 5))
	b := GenerateMovies(DefaultMovieProfile(42, 5))
	if len(a.Pages) != 5 || len(b.Pages) != 5 {
		t.Fatal("page count")
	}
	for i := range a.Pages {
		if a.Pages[i].URI != b.Pages[i].URI {
			t.Fatalf("URIs differ at %d: %s vs %s", i, a.Pages[i].URI, b.Pages[i].URI)
		}
		if dom.Render(a.Pages[i].Doc) != dom.Render(b.Pages[i].Doc) {
			t.Fatalf("page %d HTML differs across same-seed runs", i)
		}
	}
	c := GenerateMovies(DefaultMovieProfile(43, 5))
	same := 0
	for i := range a.Pages {
		if dom.Render(a.Pages[i].Doc) == dom.Render(c.Pages[i].Doc) {
			same++
		}
	}
	if same == len(a.Pages) {
		t.Error("different seeds must produce different pages")
	}
}

func TestGroundTruthPointsIntoPage(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(7, 8))
	for _, p := range cl.Pages {
		for _, comp := range cl.ComponentNames() {
			for _, n := range cl.Truth(p, comp) {
				if n.Root() != p.Doc {
					t.Fatalf("%s truth node for %s not in page tree", p.URI, comp)
				}
			}
		}
		// Mandatory components must always have truth.
		for _, comp := range []string{"title", "runtime", "country", "director", "genre", "actor", "rating"} {
			if len(cl.Truth(p, comp)) == 0 {
				t.Errorf("%s: mandatory component %s missing", p.URI, comp)
			}
		}
	}
}

func TestDiscrepanciesPresent(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(11, 60))
	counts := map[string]int{}
	for _, p := range cl.Pages {
		if len(cl.Truth(p, "language")) == 0 {
			counts["noLanguage"]++
		}
		if len(cl.Truth(p, "trivia")) == 0 {
			counts["noTrivia"]++
		} else if cl.Truth(p, "trivia")[0].Type == dom.ElementNode {
			counts["mixedTrivia"]++
		}
		if len(cl.Truth(p, "actor")) > 1 {
			counts["multiActor"]++
		}
		if dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("DL") }) != nil {
			counts["altLayout"]++
		}
		if strings.Contains(dom.Render(p.Doc), "Also Known As:") {
			counts["aka"]++
		}
	}
	for _, k := range []string{"noLanguage", "noTrivia", "mixedTrivia", "multiActor", "altLayout", "aka"} {
		if counts[k] == 0 {
			t.Errorf("discrepancy class %s never generated in 60 pages", k)
		}
	}
}

// TestEndToEndRuleInduction is the central integration test: induce rules
// for every movie component from a 10-page working sample and verify (a)
// convergence, (b) the induced properties match the component specs, and
// (c) the rules extract the right values from held-out pages.
func TestEndToEndRuleInduction(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(1234, 60))
	sample, held := cl.RepresentativeSplit(10)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}

	for _, spec := range cl.Components {
		res, err := b.BuildRule(spec.Name)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.OK {
			t.Errorf("%s: did not converge; actions=%v\nrule:\n%s\nreport:\n%s",
				spec.Name, res.Actions, res.Rule.String(), res.FinalReport().Table())
			continue
		}
		r := res.Rule
		if r.Multiplicity != spec.Multiplicity {
			t.Errorf("%s: multiplicity %s, want %s", spec.Name, r.Multiplicity, spec.Multiplicity)
		}
		// Optionality can legitimately stay mandatory if the sample
		// happened to contain the component everywhere; with these seeds
		// and 10 pages the optional ones are absent somewhere.
		if spec.Optionality == rule.Optional && r.Optionality != rule.Optional {
			t.Logf("%s: note: sample showed no absence (optionality stayed mandatory)", spec.Name)
		}

		// Held-out accuracy.
		compiled, err := r.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", spec.Name, err)
		}
		correct, total := 0, 0
		for _, p := range held {
			truth := cl.TruthStrings(p, spec.Name)
			got := compiled.Apply(p.Doc)
			var gotStrs []string
			for _, n := range got {
				gotStrs = append(gotStrs, normalized(n))
			}
			if len(truth) == 0 && len(gotStrs) == 0 {
				correct++
			} else if strings.Join(truth, "\x00") == strings.Join(gotStrs, "\x00") {
				correct++
			}
			total++
		}
		acc := float64(correct) / float64(total)
		if acc < 0.95 {
			t.Errorf("%s: held-out accuracy %.2f (%d/%d) below 0.95; rule:\n%s",
				spec.Name, acc, correct, total, r.String())
		}
	}
}

func normalized(n *dom.Node) string {
	return strings.Join(strings.Fields(nodeString(n)), " ")
}

func nodeString(n *dom.Node) string {
	if n.Type == dom.TextNode {
		return n.Data
	}
	return dom.TextContent(n)
}

func TestBooksInduction(t *testing.T) {
	cl := GenerateBooks(DefaultBookProfile(99, 40))
	sample, _ := cl.Split(10)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	for _, spec := range cl.Components {
		res, err := b.BuildRule(spec.Name)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.OK {
			t.Errorf("%s: did not converge; actions=%v\n%s", spec.Name, res.Actions, res.Rule.String())
		}
	}
}

func TestStocksInduction(t *testing.T) {
	cl := GenerateStocks(DefaultStockProfile(5, 30))
	sample, _ := cl.Split(8)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	for _, spec := range cl.Components {
		res, err := b.BuildRule(spec.Name)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.OK {
			t.Errorf("%s: did not converge; actions=%v\n%s", spec.Name, res.Actions, res.Rule.String())
		}
	}
}

func TestInjectDriftRemove(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(3, 10))
	pages, drifts := InjectDrift(cl, "runtime", DriftRemoveMandatory, 1.0, 1)
	if len(pages) != 10 {
		t.Fatal("page count")
	}
	if len(drifts) == 0 {
		t.Fatal("no drifts applied")
	}
	// Originals must be untouched.
	for _, p := range cl.Pages {
		if len(cl.Truth(p, "runtime")) == 0 {
			t.Fatal("original cluster mutated")
		}
	}
	// Drifted pages must have lost the runtime text.
	driftedURIs := map[string]bool{}
	for _, d := range drifts {
		driftedURIs[d.PageURI] = true
	}
	for _, p := range pages {
		if driftedURIs[p.URI] && strings.Contains(dom.Render(p.Doc), " min ") {
			// The label may remain; the value text node must be gone.
			orig := findPage(cl, p.URI)
			val := cl.TruthStrings(orig, "runtime")
			if len(val) > 0 && strings.Contains(dom.Render(p.Doc), val[0]) {
				t.Errorf("%s: drifted page still contains runtime value %q", p.URI, val[0])
			}
		}
	}
}

func TestInjectDriftDuplicate(t *testing.T) {
	cl := GenerateStocks(DefaultStockProfile(8, 10))
	pages, drifts := InjectDrift(cl, "last-price", DriftDuplicateValue, 1.0, 2)
	if len(drifts) == 0 {
		t.Fatal("no drifts applied")
	}
	for _, d := range drifts {
		p := findCorePage(pages, d.PageURI)
		orig := findPage(cl, d.PageURI)
		val := cl.TruthStrings(orig, "last-price")[0]
		if got := strings.Count(dom.Render(p.Doc), val); got < 2 {
			t.Errorf("%s: duplicated value appears %d times", d.PageURI, got)
		}
	}
}

func findPage(c *Cluster, uri string) *core.Page {
	for _, p := range c.Pages {
		if p.URI == uri {
			return p
		}
	}
	return nil
}

func findCorePage(pages []*core.Page, uri string) *core.Page {
	for _, p := range pages {
		if p.URI == uri {
			return p
		}
	}
	return nil
}

func TestReparseConsistency(t *testing.T) {
	// With Reparse on (default), ground truth must point into the
	// reparsed tree and the values must match the rendered HTML.
	cl := GenerateMovies(DefaultMovieProfile(21, 6))
	for _, p := range cl.Pages {
		html := dom.Render(p.Doc)
		for _, comp := range []string{"title", "runtime", "rating"} {
			for _, v := range cl.TruthStrings(p, comp) {
				if !strings.Contains(strings.Join(strings.Fields(html), " "), v) {
					t.Errorf("%s: value %q of %s not in rendered HTML", p.URI, v, comp)
				}
			}
		}
	}
}
