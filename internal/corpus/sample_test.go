package corpus

import (
	"testing"

	"repro/internal/dom"
)

func TestRepresentativeSplitCoversDiscrepancies(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(99, 80))
	sample, held := cl.RepresentativeSplit(10)
	if len(sample) != 10 || len(held) != 70 {
		t.Fatalf("split sizes: %d / %d", len(sample), len(held))
	}
	// Discrepancy classes the sample must exhibit (they all exist in 80
	// pages at the default rates).
	var hasAbsentLanguage, hasMultiActor, hasMixedTrivia, hasAltLayout bool
	for _, p := range sample {
		if len(cl.Truth(p, "language")) == 0 {
			hasAbsentLanguage = true
		}
		if len(cl.Truth(p, "actor")) > 1 {
			hasMultiActor = true
		}
		if tr := cl.Truth(p, "trivia"); len(tr) > 0 && tr[0].Type == dom.ElementNode {
			hasMixedTrivia = true
		}
		if dom.FindFirst(p.Doc, func(n *dom.Node) bool { return n.TagIs("DL") }) != nil {
			hasAltLayout = true
		}
	}
	if !hasAbsentLanguage || !hasMultiActor || !hasMixedTrivia || !hasAltLayout {
		t.Errorf("sample misses discrepancy classes: absentLang=%v multiActor=%v mixedTrivia=%v altLayout=%v",
			hasAbsentLanguage, hasMultiActor, hasMixedTrivia, hasAltLayout)
	}
}

func TestRepresentativeSplitDeterministic(t *testing.T) {
	cl := GenerateMovies(DefaultMovieProfile(99, 40))
	s1, _ := cl.RepresentativeSplit(8)
	s2, _ := cl.RepresentativeSplit(8)
	if len(s1) != len(s2) {
		t.Fatal("sizes differ")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestRepresentativeSplitKTooLarge(t *testing.T) {
	cl := GenerateStocks(DefaultStockProfile(1, 5))
	sample, held := cl.RepresentativeSplit(50)
	if len(sample) != 5 || len(held) != 0 {
		t.Errorf("oversized k: %d/%d", len(sample), len(held))
	}
}

func TestSplitPreservesOrder(t *testing.T) {
	cl := GenerateStocks(DefaultStockProfile(1, 10))
	sample, held := cl.Split(4)
	if len(sample) != 4 || len(held) != 6 {
		t.Fatal("split sizes")
	}
	for i, p := range sample {
		if p != cl.Pages[i] {
			t.Fatal("sample must be the page prefix")
		}
	}
}
