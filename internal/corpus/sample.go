package corpus

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dom"
)

// pageFeatures fingerprints the structural discrepancies a page exhibits,
// from the rule builder's perspective: per component its presence, arity
// and mixedness, plus the page's layout signature.
func (c *Cluster) pageFeatures(p *core.Page) map[string]bool {
	// Layout signature: the set of tag paths distinguishes layout
	// variants (TABLE-based vs DL-based info blocks, shifted blocks, …).
	paths := dom.TagPaths(p.Doc)
	sort.Strings(paths)
	var sig uint64 = 1469598103934665603 // FNV-1a offset basis
	last := ""
	for _, tp := range paths {
		if tp == last {
			continue
		}
		last = tp
		for i := 0; i < len(tp); i++ {
			sig ^= uint64(tp[i])
			sig *= 1099511628211
		}
		sig ^= '\n'
		sig *= 1099511628211
	}
	layout := fmt.Sprintf("%x", sig)

	f := map[string]bool{}
	for _, spec := range c.Components {
		truth := c.Truth(p, spec.Name)
		var state string
		switch {
		case len(truth) == 0:
			state = "absent:" + spec.Name
		case len(truth) > 1:
			state = "multi:" + spec.Name
		default:
			state = "single:" + spec.Name
		}
		if len(truth) > 0 && truth[0].Type == dom.ElementNode {
			f["mixed:"+spec.Name] = true
			f["mixed:"+spec.Name+"@"+layout] = true
		}
		f[state] = true
		// Conjunction with the layout: a discrepancy class occurring in
		// one layout variant tells the rule builder nothing about the
		// other variant, so both conjunctions must be covered.
		f[state+"@"+layout] = true
	}
	for _, tp := range paths {
		f["path:"+tp] = true
	}
	return f
}

// RepresentativeSplit selects a working sample of k pages that greedily
// maximizes coverage of the cluster's structural discrepancies — the
// paper's guidance that sample pages "must ideally exhibit the major
// structural discrepancies that can be found amongst the pages of this
// cluster" (§3.1). The remaining pages form the held-out set.
//
// Selection is deterministic: ties break on page order.
func (c *Cluster) RepresentativeSplit(k int) (core.Sample, []*core.Page) {
	if k >= len(c.Pages) {
		return core.Sample(c.Pages), nil
	}
	features := make([]map[string]bool, len(c.Pages))
	for i, p := range c.Pages {
		features[i] = c.pageFeatures(p)
	}
	covered := map[string]bool{}
	chosen := make([]bool, len(c.Pages))
	var sampleIdx []int
	for len(sampleIdx) < k {
		best, bestGain := -1, -1
		for i := range c.Pages {
			if chosen[i] {
				continue
			}
			gain := 0
			for f := range features[i] {
				if !covered[f] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
		sampleIdx = append(sampleIdx, best)
		for f := range features[best] {
			covered[f] = true
		}
	}
	sort.Ints(sampleIdx)
	var sample core.Sample
	var held []*core.Page
	for i, p := range c.Pages {
		if chosen[i] {
			sample = append(sample, p)
		} else {
			held = append(held, p)
		}
	}
	return sample, held
}
