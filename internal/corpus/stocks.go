package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/rule"
)

// StockProfile configures the stocks cluster: quote pages for the
// information-monitoring use case the paper's conclusion names ("the
// monitoring of Web data such as concurrent prices or stock rankings").
type StockProfile struct {
	Seed     int64
	Pages    int
	ProbNews float64 // optional news block before the quote table (shift)
	Reparse  bool
}

// DefaultStockProfile returns the standard mix.
func DefaultStockProfile(seed int64, pages int) StockProfile {
	return StockProfile{Seed: seed, Pages: pages, ProbNews: 0.4, Reparse: true}
}

var stockComponents = []ComponentSpec{
	{Name: "ticker", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "last-price", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "change", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
	{Name: "volume", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text},
}

var tickers = []string{"ACME", "GLOBX", "NMRK", "RETRO", "WEBX", "XTRCT", "MAPR", "DOMC"}

// GenerateStocks builds the stocks cluster.
func GenerateStocks(p StockProfile) *Cluster {
	r := rng(p.Seed)
	if p.Pages <= 0 {
		p.Pages = 10
	}
	c := &Cluster{
		Name:       "stocks",
		Components: stockComponents,
		truth:      map[*corePage]map[string][]*domNode{},
	}
	for i := 0; i < p.Pages; i++ {
		t := tickers[r.Intn(len(tickers))]
		uri := fmt.Sprintf("http://quotes.example/q/%s/%d", t, i)
		page, truth := generateStockPage(r, p, uri, t)
		c.Pages = append(c.Pages, page)
		c.truth[page] = truth
	}
	return c
}

func generateStockPage(r *rand.Rand, p StockProfile, uri, ticker string) (*corePage, map[string][]*domNode) {
	pb := newPageBuilder()
	main := el(pb.body, "DIV", attr("id", "quote"))

	h2 := el(main, "H2")
	pb.record("ticker", txt(h2, ticker))

	if r.Float64() < p.ProbNews {
		news := el(main, "DIV", attr("class", "news"))
		h4 := el(news, "H4")
		txt(h4, "Latest headlines")
		ul := el(news, "UL")
		for i := 0; i < 1+r.Intn(3); i++ {
			li := el(ul, "LI")
			txt(li, fmt.Sprintf("Quarterly report item %d", i+1))
		}
	}

	table := el(main, "TABLE", attr("class", "quote"))
	row := func(label, value string) *domNode {
		tr := el(table, "TR")
		td1 := el(tr, "TD")
		txt(td1, label)
		td2 := el(tr, "TD")
		return txt(td2, value)
	}
	price := 5 + r.Float64()*500
	delta := (r.Float64() - 0.5) * 10
	pb.record("last-price", row("Last:", fmt.Sprintf("%.2f", price)))
	pb.record("change", row("Change:", fmt.Sprintf("%+.2f", delta)))
	pb.record("volume", row("Volume:", fmt.Sprintf("%d", 10000+r.Intn(5000000))))
	return pb.finish(uri, p.Reparse)
}
