package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
)

func TestForumGeneration(t *testing.T) {
	cl := GenerateForum(DefaultForumProfile(14, 20))
	if len(cl.Pages) != 20 {
		t.Fatal("page count")
	}
	multiPost, mixedPost := false, false
	for _, p := range cl.Pages {
		posts := cl.Truth(p, "post")
		if len(posts) == 0 {
			t.Fatalf("%s has no posts", p.URI)
		}
		if len(posts) > 1 {
			multiPost = true
		}
		for _, post := range posts {
			if post.Type != dom.ElementNode {
				t.Fatal("post truth must be the container element")
			}
			if dom.FindFirst(post, func(n *dom.Node) bool { return n.TagIs("blockquote") }) != nil {
				mixedPost = true
			}
		}
		if len(cl.Truth(p, "post-author")) != len(posts) {
			t.Errorf("%s: authors/posts mismatch", p.URI)
		}
	}
	if !multiPost || !mixedPost {
		t.Error("discrepancy classes missing: multiPost/mixedPost")
	}
}

// TestForumInduction exercises the multivalued + mixed combination: the
// post rule must end up multivalued AND mixed, and extract every post
// container.
func TestForumInduction(t *testing.T) {
	cl := GenerateForum(DefaultForumProfile(15, 30))
	sample, held := cl.RepresentativeSplit(10)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	for _, spec := range cl.Components {
		res, err := b.BuildRule(spec.Name)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.OK {
			t.Errorf("%s: not converged: %v\n%s\n%s", spec.Name, res.Actions,
				res.Rule.String(), res.FinalReport().Table())
			continue
		}
		if res.Rule.Multiplicity != spec.Multiplicity {
			t.Errorf("%s: multiplicity %s, want %s", spec.Name,
				res.Rule.Multiplicity, spec.Multiplicity)
		}
		if spec.Name == "post" && res.Rule.Format != rule.Mixed {
			t.Errorf("post format = %s, want mixed", res.Rule.Format)
		}
		// Held-out extraction must match truth.
		c, err := res.Rule.Compile()
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		for _, p := range held {
			want := cl.TruthStrings(p, spec.Name)
			var got []string
			for _, n := range c.Apply(p.Doc) {
				got = append(got, normalized(n))
			}
			if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
				bad++
			}
		}
		if frac := float64(bad) / float64(len(held)); frac > 0.05 {
			t.Errorf("%s: %d/%d held-out pages wrong", spec.Name, bad, len(held))
		}
	}
}
