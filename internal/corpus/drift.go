package corpus

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dom"
)

// DriftKind enumerates the page-evolution faults injected for the
// failure-detection experiment (§7: a failure can "be automatically
// detected when a mandatory component cannot be found in one page or when
// the extraction of a single-valued text component returns more than one
// node").
type DriftKind int

// Drift kinds.
const (
	// DriftRemoveMandatory deletes a mandatory component's subtree.
	DriftRemoveMandatory DriftKind = iota
	// DriftDuplicateValue duplicates a single-valued component's value so
	// the rule selects more than one node.
	DriftDuplicateValue
	// DriftRelabel changes the constant label preceding a value, breaking
	// contextual rules.
	DriftRelabel
)

// Drift describes one injected fault.
type Drift struct {
	Kind      DriftKind
	Component string
	PageURI   string
}

// InjectDrift clones every page of the cluster and injects the given
// fault into a fraction of them for the named component. It returns the
// drifted pages and the record of faults actually applied (a fault that
// cannot apply to a page — e.g. the component is absent — is skipped).
func InjectDrift(c *Cluster, component string, kind DriftKind, fraction float64, seed int64) ([]*core.Page, []Drift) {
	r := rand.New(rand.NewSource(seed))
	var out []*core.Page
	var drifts []Drift
	for _, p := range c.Pages {
		clone := &core.Page{URI: p.URI, Doc: p.Doc.Clone()}
		if r.Float64() < fraction {
			if applyDrift(c, p, clone, component, kind) {
				drifts = append(drifts, Drift{Kind: kind, Component: component, PageURI: p.URI})
			}
		}
		out = append(out, clone)
	}
	return out, drifts
}

// applyDrift mutates the cloned page. Ground-truth nodes belong to the
// original tree, so they are re-located in the clone via their precise
// paths before mutation.
func applyDrift(c *Cluster, orig, clone *core.Page, component string, kind DriftKind) bool {
	truth := c.Truth(orig, component)
	if len(truth) == 0 {
		return false
	}
	target := locateInClone(truth[0], clone)
	if target == nil {
		return false
	}
	switch kind {
	case DriftRemoveMandatory:
		// Remove the whole labelled field (label element + value node)
		// when a label precedes the value — the realistic page evolution
		// where a site stops publishing the field. Bare values lose just
		// the value node.
		if target.Parent == nil {
			return false
		}
		if label := precedingLabelSibling(target); label != nil {
			label.Parent.RemoveChild(label)
		}
		target.Parent.RemoveChild(target)
		return true
	case DriftDuplicateValue:
		if target.Parent == nil {
			return false
		}
		// Duplicate the labelled region (preceding label element plus the
		// value), modelling a template change that repeats a field — the
		// §7 situation where "the extraction of a single-valued text
		// component returns more than one node".
		if label := precedingLabelSibling(target); label != nil {
			labelDup := label.Clone()
			valueDup := target.Clone()
			target.Parent.InsertBefore(labelDup, target.NextSibling)
			target.Parent.InsertBefore(valueDup, labelDup.NextSibling)
			return true
		}
		// Row-style layouts (label cell + value cell): duplicate the row.
		if target.Parent.Parent != nil && precedingLabelSibling(target.Parent) != nil {
			row := target.Parent.Parent
			if row.Parent != nil {
				row.Parent.InsertBefore(row.Clone(), row.NextSibling)
				return true
			}
		}
		dup := target.Clone()
		target.Parent.InsertBefore(dup, target.NextSibling)
		return true
	case DriftRelabel:
		// Find the nearest preceding text node (the label) and rewrite it.
		for cur := dom.PrevInDocument(target); cur != nil; cur = dom.PrevInDocument(cur) {
			if cur.Type == dom.TextNode && len(cur.Data) > 0 {
				cur.Data = "Renamed-Field:"
				return true
			}
		}
		return false
	default:
		return false
	}
}

// precedingLabelSibling returns the nearest preceding element sibling of
// n (the label element of a labelled value), or nil.
func precedingLabelSibling(n *dom.Node) *dom.Node {
	for s := n.PrevSibling; s != nil; s = s.PrevSibling {
		if s.Type == dom.ElementNode {
			return s
		}
	}
	return nil
}

// locateInClone resolves a node of the original tree to the structurally
// identical node of the cloned tree via its precise path.
func locateInClone(n *dom.Node, clone *core.Page) *dom.Node {
	path, ok := core.PathTo(n)
	if !ok {
		return nil
	}
	compiled, err := path.Compile()
	if err != nil {
		return nil
	}
	ns := compiled.SelectLocation(clone.Doc)
	if len(ns) == 0 {
		return nil
	}
	return ns[0]
}
