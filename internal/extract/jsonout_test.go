package extract

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONValueLeaf(t *testing.T) {
	e := NewElement("title")
	e.Text = "Taxi Driver"
	if got := e.JSONValue(); got != "Taxi Driver" {
		t.Fatalf("leaf = %#v", got)
	}
}

func TestJSONValueMultivaluedBecomesArray(t *testing.T) {
	page := NewElement("imdb-movie")
	page.SetAttr("uri", "http://x/1")
	page.Add(NewElement("title")).Text = "T"
	page.Add(NewElement("actor")).Text = "A"
	page.Add(NewElement("actor")).Text = "B"
	obj, ok := page.JSONValue().(map[string]any)
	if !ok {
		t.Fatalf("page = %#v", page.JSONValue())
	}
	if obj["@uri"] != "http://x/1" {
		t.Errorf("@uri = %v", obj["@uri"])
	}
	if obj["title"] != "T" {
		t.Errorf("single child must stay scalar: %v", obj["title"])
	}
	actors, ok := obj["actor"].([]any)
	if !ok || len(actors) != 2 || actors[0] != "A" || actors[1] != "B" {
		t.Errorf("actor = %#v", obj["actor"])
	}
}

func TestJSONValueNestedAggregate(t *testing.T) {
	page := NewElement("imdb-movie")
	op := page.Add(NewElement("users-opinion"))
	op.Add(NewElement("rating")).Text = "8.5/10"
	op.Add(NewElement("comment")).Text = "great"
	op.Add(NewElement("comment")).Text = "loved it"
	obj := page.JSONValue().(map[string]any)
	opinion, ok := obj["users-opinion"].(map[string]any)
	if !ok {
		t.Fatalf("users-opinion = %#v", obj["users-opinion"])
	}
	if opinion["rating"] != "8.5/10" {
		t.Errorf("rating = %v", opinion["rating"])
	}
	if cs, ok := opinion["comment"].([]any); !ok || len(cs) != 2 {
		t.Errorf("comment = %#v", opinion["comment"])
	}
}

func TestJSONValueAttributedLeaf(t *testing.T) {
	e := NewElement("page")
	e.SetAttr("uri", "u")
	e.Text = "body"
	obj, ok := e.JSONValue().(map[string]any)
	if !ok || obj["@uri"] != "u" || obj["#text"] != "body" {
		t.Fatalf("attributed leaf = %#v", e.JSONValue())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	page := NewElement("movie")
	page.Add(NewElement("title")).Text = "T <&> \"q\""
	var b strings.Builder
	if err := page.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	movie := decoded["movie"].(map[string]any)
	if movie["title"] != "T <&> \"q\"" {
		t.Errorf("title = %v", movie["title"])
	}
	if b.String() != page.JSONString()+"\n" {
		t.Error("JSONString and WriteJSON disagree")
	}
}

// TestJSONMatchesExtraction ties the encoder to real extraction output:
// the Figure 5 movie pages rendered as JSON carry the same values as the
// XML document.
func TestJSONMatchesExtraction(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	pages := moviePages()
	el, _ := p.ExtractPage(pages[0])
	obj, ok := el.JSONValue().(map[string]any)
	if !ok {
		t.Fatalf("JSONValue = %#v", el.JSONValue())
	}
	if obj["@uri"] != pages[0].URI {
		t.Errorf("@uri = %v", obj["@uri"])
	}
	for _, c := range el.Children {
		if _, present := obj[c.Name]; !present {
			t.Errorf("component %q missing from JSON", c.Name)
		}
	}
}
