package extract

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rule"
)

// Deeper coverage of the enhanced-structure (aggregation) machinery and
// the conformance checker.

func multiLevelRepo(t *testing.T) *rule.Repository {
	t.Helper()
	repo := rule.NewRepository("imdb-movies")
	rules := []rule.Rule{
		{Name: "title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY/H1[1]/text()[1]"}},
		{Name: "runtime", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY/DIV[1]/SPAN[1]/text()[1]"}},
		{Name: "comment", Optionality: rule.Optional, Multiplicity: rule.Multivalued,
			Format: rule.Text, Locations: []string{"BODY/DIV[2]/P[position()>=1]/text()[1]"}},
	}
	for _, r := range rules {
		if err := repo.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.SetStructure([]rule.StructureNode{
		{Name: "title", Component: "title"},
		{Name: "details", Children: []rule.StructureNode{
			{Name: "runtime", Component: "runtime"},
			{Name: "opinions", Children: []rule.StructureNode{
				{Name: "comment", Component: "comment"},
			}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	return repo
}

func moviePage(t *testing.T, comments int) *core.Page {
	t.Helper()
	var b strings.Builder
	b.WriteString(`<html><body><h1>A Movie</h1><div><span>99 min</span></div><div>`)
	for i := 0; i < comments; i++ {
		b.WriteString("<p>comment</p>")
	}
	b.WriteString(`</div></body></html>`)
	return core.NewPage("u", b.String())
}

func TestNestedAggregates(t *testing.T) {
	repo := multiLevelRepo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	el, failures := p.ExtractPage(moviePage(t, 2))
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	details := el.Find("details")
	if details == nil {
		t.Fatalf("details missing:\n%s", el.XMLString())
	}
	opinions := details.Find("opinions")
	if opinions == nil || len(opinions.FindAll("comment")) != 2 {
		t.Fatalf("nested aggregate wrong:\n%s", el.XMLString())
	}
}

func TestEmptyAggregateOmitted(t *testing.T) {
	repo := multiLevelRepo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	el, _ := p.ExtractPage(moviePage(t, 0))
	details := el.Find("details")
	if details == nil {
		t.Fatal("details must exist (runtime present)")
	}
	if details.Find("opinions") != nil {
		t.Errorf("empty opinions aggregate must be omitted:\n%s", el.XMLString())
	}
}

func TestValidateAgainstRepoWithStructure(t *testing.T) {
	repo := multiLevelRepo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := p.ExtractCluster([]*core.Page{moviePage(t, 1)})
	if v := ValidateAgainstRepo(doc, repo); len(v) != 0 {
		t.Fatalf("violations on valid doc: %v", v)
	}
	// Remove the mandatory runtime leaf: the checker must flag it even
	// through the nested structure.
	page := doc.Children[0]
	details := page.Find("details")
	for i, c := range details.Children {
		if c.Name == "runtime" {
			details.Children = append(details.Children[:i], details.Children[i+1:]...)
			break
		}
	}
	v := ValidateAgainstRepo(doc, repo)
	if len(v) != 1 || !strings.Contains(v[0], "runtime") {
		t.Errorf("violations = %v", v)
	}
}

func TestValidateAgainstRepoWrongRoot(t *testing.T) {
	repo := multiLevelRepo(t)
	doc := NewElement("not-the-cluster")
	v := ValidateAgainstRepo(doc, repo)
	if len(v) == 0 {
		t.Error("wrong root must be flagged")
	}
}

func TestValidateAgainstRepoDuplicateSingle(t *testing.T) {
	repo := rule.NewRepository("stocks")
	if err := repo.Record(rule.Rule{
		Name: "price", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
		Format: rule.Text, Locations: []string{"BODY//SPAN/text()"},
	}); err != nil {
		t.Fatal(err)
	}
	doc := NewElement("stocks")
	page := doc.Add(NewElement("stock"))
	page.SetAttr("uri", "u")
	a := page.Add(NewElement("price"))
	a.Text = "1"
	b := page.Add(NewElement("price"))
	b.Text = "2"
	v := ValidateAgainstRepo(doc, repo)
	if len(v) != 1 || !strings.Contains(v[0], "occurs 2 times") {
		t.Errorf("violations = %v", v)
	}
}

func TestExtractPageOrderStable(t *testing.T) {
	// Without an enhanced structure, components appear in rule order.
	repo := rule.NewRepository("c")
	for _, name := range []string{"zz", "aa", "mm"} {
		if err := repo.Record(rule.Rule{
			Name: name, Optionality: rule.Optional, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY/P[1]/text()[1]"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	el, _ := p.ExtractPage(core.NewPage("u", `<html><body><p>v</p></body></html>`))
	var order []string
	for _, c := range el.Children {
		order = append(order, c.Name)
	}
	if strings.Join(order, ",") != "zz,aa,mm" {
		t.Errorf("order = %v (must follow rule order, not alphabetical)", order)
	}
}
