package extract

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// FailureKind classifies extraction failures (§7).
type FailureKind int

// Failure kinds.
const (
	// FailureMissingMandatory: a mandatory component could not be found
	// in a page.
	FailureMissingMandatory FailureKind = iota
	// FailureMultipleValues: a single-valued component's location
	// returned more than one node.
	FailureMultipleValues
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailureMissingMandatory:
		return "missing-mandatory"
	case FailureMultipleValues:
		return "multiple-values"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure is one detected extraction failure.
type Failure struct {
	PageURI   string
	Component string
	Kind      FailureKind
	Detail    string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: component %q: %s (%s)", f.PageURI, f.Component, f.Kind, f.Detail)
}

// Postprocessor transforms an extracted raw value into its clean form —
// the paper notes the "min" suffix of "108 min" would need removing and
// suggests finer intra-text-node selection as future work (§7). The
// processor always normalizes whitespace first.
type Postprocessor func(string) string

// Processor applies a repository's rules to pages and assembles the XML
// document.
type Processor struct {
	Repo *rule.Repository
	// Post holds optional per-component value post-processors.
	Post map[string]Postprocessor

	compiled map[string]*rule.Compiled
}

// NewProcessor compiles the repository's rules.
func NewProcessor(repo *rule.Repository) (*Processor, error) {
	compiled, err := repo.CompileAll()
	if err != nil {
		return nil, err
	}
	return &Processor{Repo: repo, Post: map[string]Postprocessor{}, compiled: compiled}, nil
}

// ExtractPage extracts every component of one page into a page element.
// Failures are appended to the returned slice.
func (p *Processor) ExtractPage(page *core.Page) (*Element, []Failure) {
	el := NewElement(p.Repo.PageElementName())
	el.SetAttr("uri", page.URI)
	var failures []Failure

	values := map[string][]string{}
	for _, r := range p.Repo.Rules {
		c := p.compiled[r.Name]
		nodes := c.ApplyAll(page.Doc)
		if len(nodes) == 0 {
			if r.Optionality == rule.Mandatory {
				failures = append(failures, Failure{
					PageURI: page.URI, Component: r.Name,
					Kind:   FailureMissingMandatory,
					Detail: "no node matched any location",
				})
			}
			continue
		}
		if r.Multiplicity == rule.SingleValued && len(nodes) > 1 {
			failures = append(failures, Failure{
				PageURI: page.URI, Component: r.Name,
				Kind:   FailureMultipleValues,
				Detail: fmt.Sprintf("%d nodes matched a single-valued component", len(nodes)),
			})
			nodes = nodes[:1]
		}
		for _, n := range nodes {
			values[r.Name] = append(values[r.Name], p.values(c, n)...)
		}
	}

	if len(p.Repo.Structure) > 0 {
		for _, sn := range p.Repo.Structure {
			buildStructured(el, sn, values)
		}
	} else {
		// Default flat structure: components in rule order.
		for _, r := range p.Repo.Rules {
			for _, v := range values[r.Name] {
				leaf := el.Add(NewElement(r.Name))
				leaf.Text = v
			}
		}
	}
	return el, failures
}

// buildStructured emits the enhanced nested structure recorded in the
// repository (§4: iterative aggregation of component elements).
func buildStructured(parent *Element, sn rule.StructureNode, values map[string][]string) {
	if sn.Component != "" {
		for _, v := range values[sn.Component] {
			leaf := parent.Add(NewElement(sn.Name))
			leaf.Text = v
		}
		return
	}
	group := NewElement(sn.Name)
	for _, child := range sn.Children {
		buildStructured(group, child, values)
	}
	// Empty aggregates (all inner components absent) are omitted.
	if len(group.Children) > 0 {
		parent.Add(group)
	}
}

// values renders one component value node as its extracted string(s):
// whitespace normalization, then the rule's intra-node refinement (§7
// regex/split extension), then any registered post-processor.
func (p *Processor) values(c *rule.Compiled, n *dom.Node) []string {
	raw := textutil.NormalizeSpace(xpath.NodeStringValue(n))
	vals := c.RefineValue(raw)
	if post := p.Post[c.Name]; post != nil {
		for i := range vals {
			vals[i] = post(vals[i])
		}
	}
	return vals
}

// ExtractCluster extracts every page into the three-level (or enhanced)
// document rooted at the cluster element.
func (p *Processor) ExtractCluster(pages []*core.Page) (*Element, []Failure) {
	root := NewElement(p.Repo.Cluster)
	var failures []Failure
	for _, page := range pages {
		el, fs := p.ExtractPage(page)
		root.Add(el)
		failures = append(failures, fs...)
	}
	return root, failures
}
