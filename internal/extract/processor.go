package extract

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/streamx"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// FailureKind classifies extraction failures (§7).
type FailureKind int

// Failure kinds.
const (
	// FailureMissingMandatory: a mandatory component could not be found
	// in a page.
	FailureMissingMandatory FailureKind = iota
	// FailureMultipleValues: a single-valued component's location
	// returned more than one node.
	FailureMultipleValues
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailureMissingMandatory:
		return "missing-mandatory"
	case FailureMultipleValues:
		return "multiple-values"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure is one detected extraction failure.
type Failure struct {
	PageURI   string
	Component string
	Kind      FailureKind
	Detail    string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: component %q: %s (%s)", f.PageURI, f.Component, f.Kind, f.Detail)
}

// Postprocessor transforms an extracted raw value into its clean form —
// the paper notes the "min" suffix of "108 min" would need removing and
// suggests finer intra-text-node selection as future work (§7). The
// processor always normalizes whitespace first.
type Postprocessor func(string) string

// Processor applies a repository's rules to pages and assembles the XML
// document.
//
// A Processor follows a freeze-after-construction discipline: configure
// post-processors with SetPost, then extract. The first extraction (or an
// explicit Freeze call) freezes the configuration, after which ExtractPage
// and ExtractCluster are safe to call from any number of goroutines —
// compiled rules and the post-processor table are read-only from then on.
type Processor struct {
	Repo *rule.Repository

	mu     sync.Mutex
	frozen atomic.Bool
	post   map[string]Postprocessor

	compiled map[string]*rule.Compiled

	// stream is the whole repository compiled into one token-stream
	// automaton (nil when any location needs the general evaluator;
	// streamReason says why). scratch pools per-goroutine execution state.
	stream       *streamx.Program
	streamReason string
	scratch      sync.Pool
}

// StreamInfo reports which extraction path served a page.
type StreamInfo struct {
	// Attempted is true when the streaming automaton ran (even if it bailed
	// out mid-page).
	Attempted bool
	// Hit is true when the streaming result was used — no DOM was built.
	Hit bool
	// Reason, when Hit is false, names why the page fell back to parse+DOM:
	// a Compile reason (e.g. "general-xpath"), "no-source" (eager page
	// without retained HTML), "parsed-doc" (a tree already existed, so the
	// automaton would only duplicate work), or "depth" (runtime bail).
	Reason string
}

// Fallback reasons owned by the extract layer (compile-time reasons come
// from streamx.Compile).
const (
	StreamReasonNoSource  = "no-source"
	StreamReasonParsedDoc = "parsed-doc"
	StreamReasonDepth     = "depth"
)

// NewProcessor compiles the repository's rules — both the per-rule DOM
// form and, when every location is stream-eligible, the single streaming
// automaton the hot path executes instead of parsing.
func NewProcessor(repo *rule.Repository) (*Processor, error) {
	compiled, err := repo.CompileAll()
	if err != nil {
		return nil, err
	}
	p := &Processor{Repo: repo, post: map[string]Postprocessor{}, compiled: compiled}
	ordered := make([]*rule.Compiled, len(repo.Rules))
	for i, r := range repo.Rules {
		ordered[i] = compiled[r.Name]
	}
	p.stream, p.streamReason = streamx.Compile(ordered)
	if p.stream != nil {
		prog := p.stream
		p.scratch.New = func() any { return prog.NewScratch() }
	}
	return p, nil
}

// SetPost registers (or clears, with a nil fn) the post-processor for a
// component. It fails once the processor is frozen — configuration must
// finish before the first extraction.
func (p *Processor) SetPost(component string, fn Postprocessor) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen.Load() {
		return fmt.Errorf("extract: processor already frozen; SetPost(%q) rejected", component)
	}
	if fn == nil {
		delete(p.post, component)
	} else {
		p.post[component] = fn
	}
	return nil
}

// Freeze ends the configuration phase. It is idempotent, called implicitly
// by the first extraction, and returns the processor for chaining. After
// Freeze, concurrent extractions are safe: every SetPost write
// happens-before the freeze under the same mutex, so the post table and
// compiled rules are immutable shared state.
func (p *Processor) Freeze() *Processor {
	// Fast path: already frozen — an atomic load keeps the per-page cost
	// of the implicit Freeze in ExtractPage off the mutex, so concurrent
	// extractions don't bounce a lock cache line.
	if p.frozen.Load() {
		return p
	}
	p.mu.Lock()
	p.frozen.Store(true)
	p.mu.Unlock()
	return p
}

// ExtractPage extracts every component of one page into a page element.
// Failures are appended to the returned slice.
func (p *Processor) ExtractPage(page *core.Page) (*Element, []Failure) {
	el, _, failures := p.ExtractPageValues(page)
	return el, failures
}

// ExtractPageValues is ExtractPage returning also the flat per-component
// value map the page element was assembled from. Health monitors use the
// map to harvest last-known-good values without reverse-engineering the
// (possibly aggregated) element structure.
func (p *Processor) ExtractPageValues(page *core.Page) (*Element, map[string][]string, []Failure) {
	el, values, failures, _ := p.ExtractPageValuesInfo(page)
	return el, values, failures
}

// ExtractPageValuesInfo is ExtractPageValues reporting additionally which
// extraction path served the page. Lazy pages (core.NewPageLazy) whose
// repository compiled to a streaming automaton are extracted straight from
// the token stream — results are byte-identical to the DOM path (values,
// failures, aggregate XML), a guarantee the differential fuzz test pins.
func (p *Processor) ExtractPageValuesInfo(page *core.Page) (*Element, map[string][]string, []Failure, StreamInfo) {
	p.Freeze()
	var info StreamInfo
	src, lazy := page.Source()
	switch {
	case p.stream == nil:
		info.Reason = p.streamReason
	case page.Doc != nil:
		// A tree already exists (page-cache hit or eager page): streaming
		// would only redo work the parse already paid for.
		info.Reason = StreamReasonParsedDoc
	case !lazy:
		info.Reason = StreamReasonNoSource
	default:
		info.Attempted = true
		sc := p.scratch.Get().(*streamx.Scratch)
		if err := p.stream.Run(sc, src); err != nil {
			p.scratch.Put(sc)
			info.Reason = StreamReasonDepth
			break
		}
		el, values, failures := p.assembleStream(page.URI, sc)
		p.scratch.Put(sc)
		info.Hit = true
		return el, values, failures, info
	}
	el, values, failures := p.extractDOM(page)
	return el, values, failures, info
}

// ExtractPageStream extracts straight from raw HTML, taking the streaming
// path whenever the repository allows it (StreamInfo says whether it did).
func (p *Processor) ExtractPageStream(uri, src string) (*Element, []Failure, StreamInfo) {
	el, _, failures, info := p.ExtractPageValuesInfo(core.NewPageLazy(uri, src))
	return el, failures, info
}

// extractDOM is the general path: evaluate each compiled rule against the
// parsed tree (materializing it for lazy pages).
func (p *Processor) extractDOM(page *core.Page) (*Element, map[string][]string, []Failure) {
	doc := page.Document()
	var failures []Failure
	values := map[string][]string{}
	for _, r := range p.Repo.Rules {
		c := p.compiled[r.Name]
		nodes := c.ApplyAll(doc)
		if len(nodes) == 0 {
			if r.Optionality == rule.Mandatory {
				failures = append(failures, p.missingFailure(page.URI, r.Name))
			}
			continue
		}
		if r.Multiplicity == rule.SingleValued && len(nodes) > 1 {
			failures = append(failures, p.multipleFailure(page.URI, r.Name, len(nodes)))
			nodes = nodes[:1]
		}
		for _, n := range nodes {
			values[r.Name] = append(values[r.Name], p.values(c, n)...)
		}
	}
	return p.assemble(page.URI, values), values, failures
}

// assembleStream reads the automaton's captures with exactly the DOM
// path's semantics: location priority, mandatory/multiple failure
// detection, single-valued truncation, value rendering in document order.
func (p *Processor) assembleStream(uri string, sc *streamx.Scratch) (*Element, map[string][]string, []Failure) {
	var failures []Failure
	values := map[string][]string{}
	for i, r := range p.Repo.Rules {
		c := p.compiled[r.Name]
		n := sc.RuleMatches(i)
		if n == 0 {
			if r.Optionality == rule.Mandatory {
				failures = append(failures, p.missingFailure(uri, r.Name))
			}
			continue
		}
		maxVals := -1
		want := n
		if r.Multiplicity == rule.SingleValued && n > 1 {
			failures = append(failures, p.multipleFailure(uri, r.Name, n))
			maxVals, want = 1, 1
		}
		if !c.HasRefinement() && p.post[r.Name] == nil {
			// Unrefined rule: each capture is exactly one value, so the
			// slice is sized up front and the only string materialized per
			// value is the normalized one, straight out of the scratch
			// arena.
			vals := make([]string, 0, want)
			sc.RuleValues(i, maxVals, func(raw []byte) {
				vals = append(vals, textutil.NormalizeSpaceBytes(raw))
			})
			values[r.Name] = vals
			continue
		}
		sc.RuleValues(i, maxVals, func(raw []byte) {
			values[r.Name] = append(values[r.Name], p.refinedValues(c, textutil.NormalizeSpaceBytes(raw))...)
		})
	}
	return p.assemble(uri, values), values, failures
}

func (p *Processor) missingFailure(uri, component string) Failure {
	return Failure{
		PageURI: uri, Component: component,
		Kind:   FailureMissingMandatory,
		Detail: "no node matched any location",
	}
}

func (p *Processor) multipleFailure(uri, component string, n int) Failure {
	return Failure{
		PageURI: uri, Component: component,
		Kind:   FailureMultipleValues,
		Detail: fmt.Sprintf("%d nodes matched a single-valued component", n),
	}
}

// assemble builds the page element from the flat value map — shared by
// both extraction paths so the aggregate XML cannot diverge between them.
func (p *Processor) assemble(uri string, values map[string][]string) *Element {
	el := NewElement(p.Repo.PageElementName())
	el.SetAttr("uri", uri)
	if len(p.Repo.Structure) > 0 {
		for _, sn := range p.Repo.Structure {
			buildStructured(el, sn, values)
		}
	} else {
		// Default flat structure: components in rule order.
		for _, r := range p.Repo.Rules {
			for _, v := range values[r.Name] {
				leaf := el.Add(NewElement(r.Name))
				leaf.Text = v
			}
		}
	}
	return el
}

// buildStructured emits the enhanced nested structure recorded in the
// repository (§4: iterative aggregation of component elements).
func buildStructured(parent *Element, sn rule.StructureNode, values map[string][]string) {
	if sn.Component != "" {
		for _, v := range values[sn.Component] {
			leaf := parent.Add(NewElement(sn.Name))
			leaf.Text = v
		}
		return
	}
	group := NewElement(sn.Name)
	for _, child := range sn.Children {
		buildStructured(group, child, values)
	}
	// Empty aggregates (all inner components absent) are omitted.
	if len(group.Children) > 0 {
		parent.Add(group)
	}
}

// values renders one component value node as its extracted string(s):
// whitespace normalization, then the rule's intra-node refinement (§7
// regex/split extension), then any registered post-processor.
func (p *Processor) values(c *rule.Compiled, n *dom.Node) []string {
	return p.valuesFromRaw(c, xpath.NodeStringValue(n))
}

// valuesFromRaw is values for an already-rendered node string value (the
// streaming path captures exactly xpath.NodeStringValue's rendering: text
// node data, or the concatenated subtree text of an element).
func (p *Processor) valuesFromRaw(c *rule.Compiled, raw string) []string {
	return p.refinedValues(c, textutil.NormalizeSpace(raw))
}

// refinedValues applies the rule's intra-node refinement and any
// registered post-processor to an already-normalized node string value.
func (p *Processor) refinedValues(c *rule.Compiled, norm string) []string {
	vals := c.RefineValue(norm)
	if post := p.post[c.Name]; post != nil {
		for i := range vals {
			vals[i] = post(vals[i])
		}
	}
	return vals
}

// ExtractCluster extracts every page into the three-level (or enhanced)
// document rooted at the cluster element.
func (p *Processor) ExtractCluster(pages []*core.Page) (*Element, []Failure) {
	root := NewElement(p.Repo.Cluster)
	var failures []Failure
	for _, page := range pages {
		el, fs := p.ExtractPage(page)
		root.Add(el)
		failures = append(failures, fs...)
	}
	return root, failures
}
