package extract

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// FailureKind classifies extraction failures (§7).
type FailureKind int

// Failure kinds.
const (
	// FailureMissingMandatory: a mandatory component could not be found
	// in a page.
	FailureMissingMandatory FailureKind = iota
	// FailureMultipleValues: a single-valued component's location
	// returned more than one node.
	FailureMultipleValues
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailureMissingMandatory:
		return "missing-mandatory"
	case FailureMultipleValues:
		return "multiple-values"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure is one detected extraction failure.
type Failure struct {
	PageURI   string
	Component string
	Kind      FailureKind
	Detail    string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: component %q: %s (%s)", f.PageURI, f.Component, f.Kind, f.Detail)
}

// Postprocessor transforms an extracted raw value into its clean form —
// the paper notes the "min" suffix of "108 min" would need removing and
// suggests finer intra-text-node selection as future work (§7). The
// processor always normalizes whitespace first.
type Postprocessor func(string) string

// Processor applies a repository's rules to pages and assembles the XML
// document.
//
// A Processor follows a freeze-after-construction discipline: configure
// post-processors with SetPost, then extract. The first extraction (or an
// explicit Freeze call) freezes the configuration, after which ExtractPage
// and ExtractCluster are safe to call from any number of goroutines —
// compiled rules and the post-processor table are read-only from then on.
type Processor struct {
	Repo *rule.Repository

	mu     sync.Mutex
	frozen atomic.Bool
	post   map[string]Postprocessor

	compiled map[string]*rule.Compiled
}

// NewProcessor compiles the repository's rules.
func NewProcessor(repo *rule.Repository) (*Processor, error) {
	compiled, err := repo.CompileAll()
	if err != nil {
		return nil, err
	}
	return &Processor{Repo: repo, post: map[string]Postprocessor{}, compiled: compiled}, nil
}

// SetPost registers (or clears, with a nil fn) the post-processor for a
// component. It fails once the processor is frozen — configuration must
// finish before the first extraction.
func (p *Processor) SetPost(component string, fn Postprocessor) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen.Load() {
		return fmt.Errorf("extract: processor already frozen; SetPost(%q) rejected", component)
	}
	if fn == nil {
		delete(p.post, component)
	} else {
		p.post[component] = fn
	}
	return nil
}

// Freeze ends the configuration phase. It is idempotent, called implicitly
// by the first extraction, and returns the processor for chaining. After
// Freeze, concurrent extractions are safe: every SetPost write
// happens-before the freeze under the same mutex, so the post table and
// compiled rules are immutable shared state.
func (p *Processor) Freeze() *Processor {
	// Fast path: already frozen — an atomic load keeps the per-page cost
	// of the implicit Freeze in ExtractPage off the mutex, so concurrent
	// extractions don't bounce a lock cache line.
	if p.frozen.Load() {
		return p
	}
	p.mu.Lock()
	p.frozen.Store(true)
	p.mu.Unlock()
	return p
}

// ExtractPage extracts every component of one page into a page element.
// Failures are appended to the returned slice.
func (p *Processor) ExtractPage(page *core.Page) (*Element, []Failure) {
	el, _, failures := p.ExtractPageValues(page)
	return el, failures
}

// ExtractPageValues is ExtractPage returning also the flat per-component
// value map the page element was assembled from. Health monitors use the
// map to harvest last-known-good values without reverse-engineering the
// (possibly aggregated) element structure.
func (p *Processor) ExtractPageValues(page *core.Page) (*Element, map[string][]string, []Failure) {
	p.Freeze()
	el := NewElement(p.Repo.PageElementName())
	el.SetAttr("uri", page.URI)
	var failures []Failure

	values := map[string][]string{}
	for _, r := range p.Repo.Rules {
		c := p.compiled[r.Name]
		nodes := c.ApplyAll(page.Doc)
		if len(nodes) == 0 {
			if r.Optionality == rule.Mandatory {
				failures = append(failures, Failure{
					PageURI: page.URI, Component: r.Name,
					Kind:   FailureMissingMandatory,
					Detail: "no node matched any location",
				})
			}
			continue
		}
		if r.Multiplicity == rule.SingleValued && len(nodes) > 1 {
			failures = append(failures, Failure{
				PageURI: page.URI, Component: r.Name,
				Kind:   FailureMultipleValues,
				Detail: fmt.Sprintf("%d nodes matched a single-valued component", len(nodes)),
			})
			nodes = nodes[:1]
		}
		for _, n := range nodes {
			values[r.Name] = append(values[r.Name], p.values(c, n)...)
		}
	}

	if len(p.Repo.Structure) > 0 {
		for _, sn := range p.Repo.Structure {
			buildStructured(el, sn, values)
		}
	} else {
		// Default flat structure: components in rule order.
		for _, r := range p.Repo.Rules {
			for _, v := range values[r.Name] {
				leaf := el.Add(NewElement(r.Name))
				leaf.Text = v
			}
		}
	}
	return el, values, failures
}

// buildStructured emits the enhanced nested structure recorded in the
// repository (§4: iterative aggregation of component elements).
func buildStructured(parent *Element, sn rule.StructureNode, values map[string][]string) {
	if sn.Component != "" {
		for _, v := range values[sn.Component] {
			leaf := parent.Add(NewElement(sn.Name))
			leaf.Text = v
		}
		return
	}
	group := NewElement(sn.Name)
	for _, child := range sn.Children {
		buildStructured(group, child, values)
	}
	// Empty aggregates (all inner components absent) are omitted.
	if len(group.Children) > 0 {
		parent.Add(group)
	}
}

// values renders one component value node as its extracted string(s):
// whitespace normalization, then the rule's intra-node refinement (§7
// regex/split extension), then any registered post-processor.
func (p *Processor) values(c *rule.Compiled, n *dom.Node) []string {
	raw := textutil.NormalizeSpace(xpath.NodeStringValue(n))
	vals := c.RefineValue(raw)
	if post := p.post[c.Name]; post != nil {
		for i := range vals {
			vals[i] = post(vals[i])
		}
	}
	return vals
}

// ExtractCluster extracts every page into the three-level (or enhanced)
// document rooted at the cluster element.
func (p *Processor) ExtractCluster(pages []*core.Page) (*Element, []Failure) {
	root := NewElement(p.Repo.Cluster)
	var failures []Failure
	for _, page := range pages {
		el, fs := p.ExtractPage(page)
		root.Add(el)
		failures = append(failures, fs...)
	}
	return root, failures
}
