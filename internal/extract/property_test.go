package extract

import (
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"
)

// randomElement builds a random output tree with adversarial content.
func randomElement(r *rand.Rand, depth int) *Element {
	names := []string{"a", "b", "item", "value", "users-opinion"}
	e := NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		e.SetAttr("uri", randText(r))
	}
	if depth <= 0 || r.Intn(3) == 0 {
		e.Text = randText(r)
		return e
	}
	for i := 0; i < r.Intn(4); i++ {
		e.Add(randomElement(r, depth-1))
	}
	return e
}

func randText(r *rand.Rand) string {
	pieces := []string{"plain", "<tag>", "&amp;", "&", `"quoted"`, "'single'",
		"a < b > c", "108 min", "été ★", "]]>", "\tws\n"}
	var b strings.Builder
	for i := 0; i <= r.Intn(3); i++ {
		b.WriteString(pieces[r.Intn(len(pieces))])
	}
	return b.String()
}

// TestPropertyXMLWellFormed: every serialized document parses with
// encoding/xml and round-trips its text content.
func TestPropertyXMLWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		root := randomElement(r, 3)
		out := root.XMLString()
		dec := xml.NewDecoder(strings.NewReader(out))
		var textParts []string
		var attrParts []string
		for {
			tok, err := dec.Token()
			if err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("iteration %d: invalid XML: %v\n%s", i, err, out)
			}
			switch x := tok.(type) {
			case xml.CharData:
				textParts = append(textParts, string(x))
			case xml.StartElement:
				for _, a := range x.Attr {
					attrParts = append(attrParts, a.Value)
				}
			}
		}
		// Every Text value must be recoverable from the parsed stream.
		joined := strings.Join(textParts, "")
		var checkTexts func(e *Element)
		failed := false
		checkTexts = func(e *Element) {
			if failed {
				return
			}
			if e.Text != "" && !strings.Contains(joined, strings.TrimSpace(e.Text)) &&
				strings.TrimSpace(e.Text) != "" {
				// Whitespace normalization by the decoder can only touch
				// leading/trailing space of chardata chunks; the trimmed
				// text must appear.
				t.Fatalf("iteration %d: text %q lost in output\n%s", i, e.Text, out)
			}
			for _, c := range e.Children {
				checkTexts(c)
			}
		}
		checkTexts(root)
		joinedAttrs := strings.Join(attrParts, "\x00")
		var checkAttrs func(e *Element)
		checkAttrs = func(e *Element) {
			for _, a := range e.Attrs {
				if !strings.Contains(joinedAttrs, a.Value) {
					t.Fatalf("iteration %d: attr %q lost\n%s", i, a.Value, out)
				}
			}
			for _, c := range e.Children {
				checkAttrs(c)
			}
		}
		checkAttrs(root)
	}
}

func TestSortChildrenDeterminism(t *testing.T) {
	e := NewElement("root")
	for _, n := range []string{"b", "a", "c", "a"} {
		c := e.Add(NewElement(n))
		c.Text = n + "-text"
	}
	e.SortChildren()
	got := make([]string, len(e.Children))
	for i, c := range e.Children {
		got[i] = c.Name
	}
	if strings.Join(got, "") != "aabc" {
		t.Errorf("sorted = %v", got)
	}
}
