// Package extract implements the XML extraction processor of §4: it
// interprets the mapping rules of a repository to produce an XML document
// containing the targeted data (the primitive three-level structure of
// Figure 5, or a nested structure when the repository records an enhanced
// structure) and an XML Schema describing it, with cardinality constraints
// derived from the optionality and multiplicity properties.
//
// The processor also performs the semi-automatic failure detection the
// paper sketches in §7: a mandatory component that cannot be found in a
// page, or a single-valued component whose location returns more than one
// node, is reported as an extraction failure.
package extract

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Element is a node of the produced XML document. Leaves carry Text;
// inner elements carry Children. Attributes are kept as an ordered list
// for deterministic output.
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element
}

// Attr is one attribute of an output element.
type Attr struct {
	Name  string
	Value string
}

// NewElement creates an element.
func NewElement(name string) *Element { return &Element{Name: name} }

// Add appends a child and returns it for chaining.
func (e *Element) Add(child *Element) *Element {
	e.Children = append(e.Children, child)
	return child
}

// SetAttr appends an attribute.
func (e *Element) SetAttr(name, value string) {
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
}

// Find returns the first direct child with the given name, or nil.
func (e *Element) Find(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindAll returns every direct child with the given name.
func (e *Element) FindAll(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// WriteXML serializes the element tree with two-space indentation and an
// XML declaration, matching the Figure 5 layout.
func (e *Element) WriteXML(w io.Writer) error {
	if _, err := io.WriteString(w, `<?xml version="1.0" encoding="UTF-8"?>`+"\n"); err != nil {
		return err
	}
	return e.write(w, 0)
}

// XMLString returns the serialized document.
func (e *Element) XMLString() string {
	var b strings.Builder
	_ = e.WriteXML(&b)
	return b.String()
}

func (e *Element) write(w io.Writer, depth int) error {
	ind := strings.Repeat("  ", depth)
	var open strings.Builder
	open.WriteString(ind)
	open.WriteByte('<')
	open.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&open, ` %s="%s"`, a.Name, escapeAttr(a.Value))
	}
	switch {
	case len(e.Children) == 0 && e.Text == "":
		open.WriteString("/>\n")
		_, err := io.WriteString(w, open.String())
		return err
	case len(e.Children) == 0:
		fmt.Fprintf(&open, ">%s</%s>\n", escapeText(e.Text), e.Name)
		_, err := io.WriteString(w, open.String())
		return err
	default:
		open.WriteString(">\n")
		if _, err := io.WriteString(w, open.String()); err != nil {
			return err
		}
		for _, c := range e.Children {
			if err := c.write(w, depth+1); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>\n", ind, e.Name)
		return err
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortChildren orders direct children by name then text — used only by
// tests that compare documents structurally.
func (e *Element) SortChildren() {
	sort.SliceStable(e.Children, func(i, j int) bool {
		if e.Children[i].Name != e.Children[j].Name {
			return e.Children[i].Name < e.Children[j].Name
		}
		return e.Children[i].Text < e.Children[j].Text
	})
}
