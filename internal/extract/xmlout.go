// Package extract implements the XML extraction processor of §4: it
// interprets the mapping rules of a repository to produce an XML document
// containing the targeted data (the primitive three-level structure of
// Figure 5, or a nested structure when the repository records an enhanced
// structure) and an XML Schema describing it, with cardinality constraints
// derived from the optionality and multiplicity properties.
//
// The processor also performs the semi-automatic failure detection the
// paper sketches in §7: a mandatory component that cannot be found in a
// page, or a single-valued component whose location returns more than one
// node, is reported as an extraction failure.
package extract

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"sync"
)

// Element is a node of the produced XML document. Leaves carry Text;
// inner elements carry Children. Attributes are kept as an ordered list
// for deterministic output.
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element
}

// Attr is one attribute of an output element.
type Attr struct {
	Name  string
	Value string
}

// NewElement creates an element.
func NewElement(name string) *Element { return &Element{Name: name} }

// Add appends a child and returns it for chaining.
func (e *Element) Add(child *Element) *Element {
	e.Children = append(e.Children, child)
	return child
}

// SetAttr appends an attribute.
func (e *Element) SetAttr(name, value string) {
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
}

// Find returns the first direct child with the given name, or nil.
func (e *Element) Find(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindAll returns every direct child with the given name.
func (e *Element) FindAll(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// xmlBufPool recycles whole-document encode buffers: serializing into a
// pooled buffer and issuing a single Write keeps the per-request XML path
// free of the per-element builder allocations the recursive writer would
// otherwise pay.
var xmlBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// textEscaper and attrEscaper are built once; strings.Replacer is safe
// for concurrent use and WriteString escapes straight into the buffer
// without an intermediate string.
var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

// WriteXML serializes the element tree with two-space indentation and an
// XML declaration, matching the Figure 5 layout.
func (e *Element) WriteXML(w io.Writer) error {
	buf := xmlBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	e.appendXML(buf, 0)
	_, err := w.Write(buf.Bytes())
	if buf.Cap() <= 1<<20 {
		xmlBufPool.Put(buf)
	}
	return err
}

// XMLString returns the serialized document.
func (e *Element) XMLString() string {
	var b strings.Builder
	_ = e.WriteXML(&b)
	return b.String()
}

func writeIndent(b *bytes.Buffer, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (e *Element) appendXML(b *bytes.Buffer, depth int) {
	writeIndent(b, depth)
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		_, _ = attrEscaper.WriteString(b, a.Value)
		b.WriteByte('"')
	}
	switch {
	case len(e.Children) == 0 && e.Text == "":
		b.WriteString("/>\n")
	case len(e.Children) == 0:
		b.WriteByte('>')
		_, _ = textEscaper.WriteString(b, e.Text)
		b.WriteString("</")
		b.WriteString(e.Name)
		b.WriteString(">\n")
	default:
		b.WriteString(">\n")
		for _, c := range e.Children {
			c.appendXML(b, depth+1)
		}
		writeIndent(b, depth)
		b.WriteString("</")
		b.WriteString(e.Name)
		b.WriteString(">\n")
	}
}

// SortChildren orders direct children by name then text — used only by
// tests that compare documents structurally.
func (e *Element) SortChildren() {
	sort.SliceStable(e.Children, func(i, j int) bool {
		if e.Children[i].Name != e.Children[j].Name {
			return e.Children[i].Name < e.Children[j].Name
		}
		return e.Children[i].Text < e.Children[j].Text
	})
}
