package extract

import (
	"sync"
	"testing"
)

// TestConcurrentExtractPage proves the freeze-after-construction
// discipline: after configuration, ExtractPage is safe from many
// goroutines at once (run under -race). Every goroutine must also see
// identical output — concurrent evaluation shares only immutable state.
func TestConcurrentExtractPage(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPost("runtime", TrimSuffixPost(" min")); err != nil {
		t.Fatal(err)
	}
	pages := moviePages()
	p.Freeze()

	want := make([]string, len(pages))
	for i, page := range pages {
		el, _ := p.ExtractPage(page)
		want[i] = el.XMLString()
	}

	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				idx := (g + i) % len(pages)
				el, _ := p.ExtractPage(pages[idx])
				if got := el.XMLString(); got != want[idx] {
					t.Errorf("goroutine %d: page %d output diverged", g, idx)
					return
				}
			}
		}(g)
	}
	// Concurrent SetPost attempts must fail cleanly, never race.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.SetPost("runtime", nil); err == nil {
				t.Error("SetPost on a frozen processor must fail")
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentExtractCluster exercises the cluster-level entry point
// under concurrency as well.
func TestConcurrentExtractCluster(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	pages := moviePages()
	ref, _ := p.ExtractCluster(pages)
	want := ref.XMLString()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doc, _ := p.ExtractCluster(pages)
			if doc.XMLString() != want {
				t.Error("concurrent ExtractCluster output diverged")
			}
		}()
	}
	wg.Wait()
}
