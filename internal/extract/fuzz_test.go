package extract

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/rule"
)

// diffRepos builds the processors the differential suite runs: one
// stream-eligible repository exercising every automaton shape (exact
// positions, descendant steps, position ranges, contextual needles,
// element captures, whole-body capture, multi-location priority, a dead
// location, mandatory and single-valued failure detection), and one
// general-XPath repository that must take the DOM fallback.
func diffRepos(t testing.TB) map[string]*Processor {
	t.Helper()
	mk := func(cluster string, rules ...rule.Rule) *Processor {
		repo := rule.NewRepository(cluster)
		for _, r := range rules {
			if err := repo.Record(r); err != nil {
				t.Fatalf("record %s/%s: %v", cluster, r.Name, err)
			}
		}
		proc, err := NewProcessor(repo)
		if err != nil {
			t.Fatalf("compile %s: %v", cluster, err)
		}
		return proc.Freeze()
	}
	eligible := mk("fuzzstream",
		rule.Rule{Name: "title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY[1]/H1[1]/text()[1]"}},
		rule.Rule{Name: "runtime", Optionality: rule.Optional, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY//text()[preceding::text()[1][contains(., 'Runtime:')]]"}},
		rule.Rule{Name: "links", Optionality: rule.Optional, Multiplicity: rule.Multivalued,
			Format: rule.Text, Locations: []string{"BODY[1]/P[1]/A[position()>=1]/text()[1]"}},
		rule.Rule{Name: "trivia", Optionality: rule.Optional, Multiplicity: rule.Multivalued,
			Format: rule.Text, Locations: []string{"BODY//DIV/DIV[preceding::text()[1][contains(., 'Trivia')]]"}},
		rule.Rule{Name: "deep", Optionality: rule.Optional, Multiplicity: rule.Multivalued,
			Format: rule.Text, Locations: []string{"BODY//DIV//SPAN/text()[1]"}},
		rule.Rule{Name: "whole", Optionality: rule.Optional, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY[1]"}},
		rule.Rule{Name: "pick", Optionality: rule.Optional, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY[1]/H2[1]/text()[1]", "BODY[1]/H1[1]/text()[1]"}},
		rule.Rule{Name: "dead", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"BODY[2]/H1[1]/text()[1]"}},
	)
	if eligible.stream == nil {
		t.Fatalf("fuzzstream repo not stream-eligible: %s", eligible.streamReason)
	}
	general := mk("fuzzgeneral",
		rule.Rule{Name: "title", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
			Format: rule.Text, Locations: []string{"//H1/text()"}},
	)
	if general.stream != nil {
		t.Fatal("fuzzgeneral repo unexpectedly stream-eligible")
	}
	return map[string]*Processor{"stream": eligible, "general": general}
}

// renderXML renders the aggregate page element for byte comparison.
func renderXML(t testing.TB, el *Element) string {
	t.Helper()
	var buf bytes.Buffer
	if err := el.WriteXML(&buf); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	return buf.String()
}

// diffOnePage runs one processor over one page both ways — lazy (stream
// path when eligible) and pre-parsed (DOM path) — and requires
// byte-identical results: values, failures, and the aggregate XML.
func diffOnePage(t testing.TB, name string, proc *Processor, uri, html string) {
	t.Helper()
	elS, valS, failS, infoS := proc.ExtractPageValuesInfo(core.NewPageLazy(uri, html))
	elD, valD, failD, infoD := proc.ExtractPageValuesInfo(core.NewPage(uri, html))
	if infoD.Hit {
		t.Fatalf("%s: pre-parsed page took the stream path", name)
	}
	if !reflect.DeepEqual(valS, valD) {
		t.Errorf("%s on %q: values diverge (stream hit=%v reason=%q)\n  stream %v\n  dom    %v",
			name, html, infoS.Hit, infoS.Reason, valS, valD)
	}
	if !reflect.DeepEqual(failS, failD) {
		t.Errorf("%s on %q: failures diverge\n  stream %v\n  dom    %v", name, html, failS, failD)
	}
	if xs, xd := renderXML(t, elS), renderXML(t, elD); xs != xd {
		t.Errorf("%s on %q: aggregate XML diverges\n  stream %s\n  dom    %s", name, html, xs, xd)
	}
}

// streamFuzzSeeds is the committed seed corpus for FuzzStreamExtract.
// Plain `go test` (and CI with it) runs every seed through the
// differential check, so the corpus doubles as an always-on regression
// suite; `go test -fuzz=FuzzStreamExtract ./internal/extract` mutates
// from here.
var streamFuzzSeeds = []string{
	// Shapes every rule in the eligible repo can hit.
	`<html><head><title>T</title></head><body><h1>Title</h1><p><a href=x>one</a><a>two</a></p></body></html>`,
	`<body><h1>A&amp;B</h1><div>Runtime: <b>x</b>108 min</div><div>DVD</div></body>`,
	`<body><div><div>Trivia</div><div>fact one</div></div><div><div>other</div></div></body>`,
	`<body><div>Trivia</div><div><div>deep<span>s1</span></div><span>s2</span></div></body>`,
	`<body><h1>x</h1><h2>y</h2><p>t<a>a1</a>mid<a>a2</a><a>a3</a></p></body>`,
	// Failure triggers: missing mandatory title, multiple single-valued
	// runtime hits.
	`<body><p>no title here</p></body>`,
	`<body><p>Runtime:</p><p>108 min</p><p>Runtime:</p><p>92 min</p></body>`,
	// Whitespace, entities, raw text, tables with implied end tags.
	`<body><pre>  keep  </pre><div> </div><h1> spaced </h1></body>`,
	`<body><div>Runtime: </div> <i>ital</i> 108&nbsp;min</body>`,
	`<body><script>var x = "<h1>not</h1>";</script><h1>real</h1></body>`,
	`<body><table><tr><td>c1<td>c2<tr><td>c3</table></body>`,
	`<body><ul><li>one<li>two<li>three</ul></body>`,
	// Implicit body, head routing, empty and degenerate markup.
	`<h1>implicit body</h1><p>tail`,
	`<title>early</title><meta x><h1>after head</h1>`,
	``, `plain text only`, `<body><h1></h1><p></p></body>`,
	// Truncated and hostile markup from the parser fuzz corpus.
	"<", "</", "<!", "<!--", "<!-- unterminated", `<a href="x`,
	"</td></td></table>", "<b><i>bold-italic</b></i>",
	"&amp; &lt; &#65; &#x41; &unknown; &#; &", "a&b<c&d>",
	"\x00\x01\x02", "<p>\x80\xff</p>", "<\xc3\x28>",
	"<DiV><SpAn>mixed</sPaN></dIv>",
	// Deep nesting past the automaton's depth bound: the stream path must
	// bail and the fallback must still agree byte-for-byte.
	strings.Repeat("<div>", 200) + "<span>deep</span>",
	strings.Repeat("<p>x", 100),
}

// FuzzStreamExtract is the differential guarantee of the streaming
// extractor: for arbitrary byte soup, extracting through the token-stream
// automaton and through parse+DOM must produce byte-identical results —
// the same component values, the same detected failures, the same
// aggregate XML. The general-XPath processor rides along to pin the
// fallback plumbing.
func FuzzStreamExtract(f *testing.F) {
	for _, s := range streamFuzzSeeds {
		f.Add(s)
	}
	procs := diffRepos(f)
	f.Fuzz(func(t *testing.T, html string) {
		if len(html) > 1<<16 {
			t.Skip("bounded input size")
		}
		for name, proc := range procs {
			diffOnePage(t, name, proc, "fuzz://page", html)
		}
	})
}

// TestStreamDifferentialCorpus locks the differential guarantee on
// realistic traffic: rules induced from each synthetic site family must
// (a) compile to the streaming automaton — the fast path carries real
// induced repositories, not just hand-picked shapes — and (b) agree
// byte-for-byte with the DOM path on every page of the cluster.
func TestStreamDifferentialCorpus(t *testing.T) {
	clusters := []*corpus.Cluster{
		corpus.GenerateMovies(corpus.DefaultMovieProfile(21, 12)),
		corpus.GenerateBooks(corpus.DefaultBookProfile(5, 10)),
		corpus.GenerateStocks(corpus.DefaultStockProfile(9, 10)),
		corpus.GenerateForum(corpus.DefaultForumProfile(13, 10)),
	}
	for _, cl := range clusters {
		sample, _ := cl.RepresentativeSplit(6)
		builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
		repo := rule.NewRepository(cl.Name)
		if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
			t.Fatalf("%s: induction: %v", cl.Name, err)
		}
		if len(repo.Rules) == 0 {
			t.Fatalf("%s: no rules induced", cl.Name)
		}
		proc, err := NewProcessor(repo)
		if err != nil {
			t.Fatal(err)
		}
		if proc.stream == nil {
			t.Fatalf("%s: induced repository not stream-eligible: %s", cl.Name, proc.streamReason)
		}
		for i, p := range cl.Pages {
			uri := fmt.Sprintf("http://%s.example/p%d", cl.Name, i)
			html := dom.Render(p.Doc)
			diffOnePage(t, cl.Name, proc, uri, html)
			// And the public raw-HTML entry point takes the fast path.
			if _, _, info := proc.ExtractPageStream(uri, html); !info.Hit {
				t.Fatalf("%s page %d: ExtractPageStream fell back: %s", cl.Name, i, info.Reason)
			}
		}
	}
}
