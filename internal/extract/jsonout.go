package extract

import (
	"encoding/json"
	"io"
)

// JSON rendering of extraction output, the service-friendly sibling of
// the paper's XML document: the same element tree, mapped with a compact
// XML→JSON convention so records round-trip into ordinary JSON consumers.
//
// Mapping rules:
//
//   - attributes become "@name" keys;
//   - a leaf element (no children) contributes its text as a plain string,
//     or an object carrying "@attrs" plus "#text" when it has attributes;
//   - children are grouped by element name; a name occurring once maps to
//     its value, a name occurring several times maps to an array — so
//     multivalued components ("actor") naturally become JSON arrays;
//   - an element with both attributes and children merges "@attr" keys
//     into the children object.
//
// The grouping loses sibling interleaving order between *different*
// component names, which the XML keeps; order among same-named siblings
// is preserved. That trade is standard for record-oriented consumers —
// anyone who needs exact document order asks for XML.

// JSONValue returns the element rendered as a generic JSON-ready value
// (string or map[string]any), following the package's XML→JSON mapping.
func (e *Element) JSONValue() any {
	if len(e.Children) == 0 && len(e.Attrs) == 0 {
		return e.Text
	}
	obj := make(map[string]any, len(e.Attrs)+len(e.Children)+1)
	for _, a := range e.Attrs {
		obj["@"+a.Name] = a.Value
	}
	if len(e.Children) == 0 {
		if e.Text != "" {
			obj["#text"] = e.Text
		}
		return obj
	}
	// Group children by name, preserving per-name order.
	order := make([]string, 0, len(e.Children))
	grouped := map[string][]any{}
	for _, c := range e.Children {
		if _, seen := grouped[c.Name]; !seen {
			order = append(order, c.Name)
		}
		grouped[c.Name] = append(grouped[c.Name], c.JSONValue())
	}
	for _, name := range order {
		vs := grouped[name]
		if len(vs) == 1 {
			obj[name] = vs[0]
		} else {
			obj[name] = vs
		}
	}
	return obj
}

// WriteJSON serializes the element as indented JSON, wrapped in a
// single-key object naming the element — the JSON analogue of WriteXML.
func (e *Element) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{e.Name: e.JSONValue()})
}

// JSONString returns the serialized JSON document.
func (e *Element) JSONString() string {
	b, err := json.MarshalIndent(map[string]any{e.Name: e.JSONValue()}, "", "  ")
	if err != nil {
		return ""
	}
	return string(b)
}
