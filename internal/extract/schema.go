package extract

import (
	"fmt"
	"strings"

	"repro/internal/rule"
)

// GenerateSchema produces the XML Schema document describing the
// extraction output (§4): the name property of a mapping rule becomes an
// element name, while optionality and multiplicity become cardinality
// constraints (minOccurs/maxOccurs). A recorded enhanced structure yields
// the corresponding nested complex types.
func GenerateSchema(repo *rule.Repository) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">` + "\n")
	fmt.Fprintf(&b, `  <xs:element name="%s">`+"\n", repo.Cluster)
	b.WriteString("    <xs:complexType>\n      <xs:sequence>\n")
	fmt.Fprintf(&b, `        <xs:element name="%s" minOccurs="0" maxOccurs="unbounded">`+"\n",
		repo.PageElementName())
	b.WriteString("          <xs:complexType>\n            <xs:sequence>\n")
	if len(repo.Structure) > 0 {
		for _, sn := range repo.Structure {
			writeStructureSchema(&b, repo, sn, 14)
		}
	} else {
		for _, r := range repo.Rules {
			writeComponentSchema(&b, r, r.Name, 14)
		}
	}
	b.WriteString("            </xs:sequence>\n")
	b.WriteString(`            <xs:attribute name="uri" type="xs:anyURI"/>` + "\n")
	b.WriteString("          </xs:complexType>\n")
	b.WriteString("        </xs:element>\n")
	b.WriteString("      </xs:sequence>\n    </xs:complexType>\n  </xs:element>\n")
	b.WriteString("</xs:schema>\n")
	return b.String()
}

func writeComponentSchema(b *strings.Builder, r rule.Rule, name string, indent int) {
	ind := strings.Repeat(" ", indent)
	minOccurs := "1"
	if r.Optionality == rule.Optional {
		minOccurs = "0"
	}
	maxOccurs := "1"
	if r.Multiplicity == rule.Multivalued {
		maxOccurs = "unbounded"
	}
	fmt.Fprintf(b, `%s<xs:element name="%s" type="xs:string" minOccurs="%s" maxOccurs="%s"/>`+"\n",
		ind, name, minOccurs, maxOccurs)
}

// writeStructureSchema emits the schema for an enhanced-structure node: a
// leaf inherits cardinalities from its rule; an aggregate becomes an
// optional complex element wrapping its children.
func writeStructureSchema(b *strings.Builder, repo *rule.Repository, sn rule.StructureNode, indent int) {
	ind := strings.Repeat(" ", indent)
	if sn.Component != "" {
		if r, ok := repo.Lookup(sn.Component); ok {
			writeComponentSchema(b, *r, sn.Name, indent)
		}
		return
	}
	fmt.Fprintf(b, `%s<xs:element name="%s" minOccurs="0" maxOccurs="1">`+"\n", ind, sn.Name)
	fmt.Fprintf(b, "%s  <xs:complexType>\n%s    <xs:sequence>\n", ind, ind)
	for _, child := range sn.Children {
		writeStructureSchema(b, repo, child, indent+6)
	}
	fmt.Fprintf(b, "%s    </xs:sequence>\n%s  </xs:complexType>\n%s</xs:element>\n", ind, ind, ind)
}

// ValidateAgainstRepo checks an extracted document against the
// cardinality constraints the schema would impose: every mandatory
// component present in each page element, single-valued components at
// most once. It returns the violations found (nil means conformant).
// This is a structural conformance check, not a full XSD validator.
func ValidateAgainstRepo(doc *Element, repo *rule.Repository) []string {
	var violations []string
	pageName := repo.PageElementName()
	if doc.Name != repo.Cluster {
		violations = append(violations,
			fmt.Sprintf("root element %q, want %q", doc.Name, repo.Cluster))
	}
	for _, page := range doc.Children {
		if page.Name != pageName {
			violations = append(violations,
				fmt.Sprintf("unexpected page element %q", page.Name))
			continue
		}
		counts := map[string]int{}
		countComponents(page, repo, counts)
		for _, r := range repo.Rules {
			n := counts[r.Name]
			if r.Optionality == rule.Mandatory && n == 0 {
				violations = append(violations,
					fmt.Sprintf("%s: mandatory component %q missing", pageAttr(page), r.Name))
			}
			if r.Multiplicity == rule.SingleValued && n > 1 {
				violations = append(violations,
					fmt.Sprintf("%s: single-valued component %q occurs %d times", pageAttr(page), r.Name, n))
			}
		}
	}
	return violations
}

// countComponents tallies leaf occurrences by component, descending
// through aggregate elements. With an enhanced structure the element name
// may differ from the component name; the structure mapping resolves it.
func countComponents(el *Element, repo *rule.Repository, counts map[string]int) {
	nameToComponent := map[string]string{}
	var collect func(ns []rule.StructureNode)
	collect = func(ns []rule.StructureNode) {
		for _, n := range ns {
			if n.Component != "" {
				nameToComponent[n.Name] = n.Component
			} else {
				collect(n.Children)
			}
		}
	}
	collect(repo.Structure)
	var walk func(e *Element)
	walk = func(e *Element) {
		for _, c := range e.Children {
			if comp, ok := nameToComponent[c.Name]; ok {
				counts[comp]++
			} else if _, isRule := repo.Lookup(c.Name); isRule {
				counts[c.Name]++
			}
			walk(c)
		}
	}
	walk(el)
}

func pageAttr(page *Element) string {
	for _, a := range page.Attrs {
		if a.Name == "uri" {
			return a.Value
		}
	}
	return page.Name
}
