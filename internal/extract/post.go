package extract

import "strings"

// Common post-processors for the noise-stripping the paper identifies
// (§3.3: "the 'min' suffix will have to be removed in order to get the
// proper data"; §7 suggests finer intra-node selection as future work).

// TrimSuffixPost removes a literal suffix (and surrounding space).
func TrimSuffixPost(suffix string) Postprocessor {
	return func(s string) string {
		return strings.TrimSpace(strings.TrimSuffix(s, suffix))
	}
}

// TrimPrefixPost removes a literal prefix (and surrounding space).
func TrimPrefixPost(prefix string) Postprocessor {
	return func(s string) string {
		return strings.TrimSpace(strings.TrimPrefix(s, prefix))
	}
}

// ChainPost composes post-processors left to right.
func ChainPost(ps ...Postprocessor) Postprocessor {
	return func(s string) string {
		for _, p := range ps {
			s = p(s)
		}
		return s
	}
}

// FirstFieldPost keeps only the first whitespace-separated field — e.g.
// "108 min" → "108".
func FirstFieldPost() Postprocessor {
	return func(s string) string {
		fields := strings.Fields(s)
		if len(fields) == 0 {
			return ""
		}
		return fields[0]
	}
}
