package extract

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/rule"
)

// figure5Repo builds a repository holding only the runtime rule, as in the
// paper's Figure 5 example.
func figure5Repo(t *testing.T) *rule.Repository {
	t.Helper()
	repo := rule.NewRepository("imdb-movies")
	err := repo.Record(rule.Rule{
		Name:         "runtime",
		Optionality:  rule.Mandatory,
		Multiplicity: rule.SingleValued,
		Format:       rule.Text,
		Locations:    []string{`BODY//text()[preceding::text()[1][contains(., 'Runtime:')]]`},
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func moviePages() []*core.Page {
	mk := func(uri, runtime string) *core.Page {
		return core.NewPage(uri,
			`<html><body><table><tr><td><b>Runtime:</b> `+runtime+` <br><b>Country:</b> X <br></td></tr></table></body></html>`)
	}
	return []*core.Page{
		mk("http://imdb.com/title/tt0095159/", "108 min"),
		mk("http://imdb.com/title/tt0071853/", "91 min"),
		mk("http://imdb.com/title/tt0074103/", "104 min"),
		mk("http://imdb.com/title/tt0102059/", "84 min"),
	}
}

// TestFigure5Document reproduces the generated XML document of Figure 5.
func TestFigure5Document(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	doc, failures := p.ExtractCluster(moviePages())
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	xml := doc.XMLString()
	for _, want := range []string{
		`<imdb-movies>`,
		`<imdb-movie uri="http://imdb.com/title/tt0095159/">`,
		`<runtime>108 min</runtime>`,
		`<runtime>91 min</runtime>`,
		`<runtime>104 min</runtime>`,
		`<runtime>84 min</runtime>`,
		`</imdb-movies>`,
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML missing %q:\n%s", want, xml)
		}
	}
	if doc.Name != "imdb-movies" || len(doc.Children) != 4 {
		t.Errorf("three-level structure wrong: root %s with %d pages", doc.Name, len(doc.Children))
	}
}

func TestPostprocessing(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPost("runtime", TrimSuffixPost(" min")); err != nil {
		t.Fatal(err)
	}
	doc, _ := p.ExtractCluster(moviePages()[:1])
	got := doc.Children[0].Find("runtime").Text
	if got != "108" {
		t.Errorf("post-processed runtime = %q, want 108", got)
	}
	// The first extraction froze the processor: late SetPost must fail.
	if err := p.SetPost("runtime", nil); err == nil {
		t.Error("SetPost after extraction should fail")
	}
}

func TestPostprocessorHelpers(t *testing.T) {
	if TrimPrefixPost("Rated ")("Rated 8.2") != "8.2" {
		t.Error("TrimPrefixPost")
	}
	if FirstFieldPost()("108 min") != "108" {
		t.Error("FirstFieldPost")
	}
	chained := ChainPost(TrimSuffixPost("min"), FirstFieldPost())
	if chained("108 min") != "108" {
		t.Error("ChainPost")
	}
	if FirstFieldPost()("") != "" {
		t.Error("FirstFieldPost empty")
	}
}

func TestSchemaGenerationCardinalities(t *testing.T) {
	repo := rule.NewRepository("imdb-movies")
	rules := []rule.Rule{
		{Name: "runtime", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued, Format: rule.Text, Locations: []string{"BODY//text()[1]"}},
		{Name: "language", Optionality: rule.Optional, Multiplicity: rule.SingleValued, Format: rule.Text, Locations: []string{"BODY//text()[2]"}},
		{Name: "actor", Optionality: rule.Mandatory, Multiplicity: rule.Multivalued, Format: rule.Text, Locations: []string{"BODY//LI/text()"}},
	}
	for _, r := range rules {
		if err := repo.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	xsd := GenerateSchema(repo)
	for _, want := range []string{
		`<xs:element name="imdb-movies">`,
		`<xs:element name="imdb-movie" minOccurs="0" maxOccurs="unbounded">`,
		`<xs:element name="runtime" type="xs:string" minOccurs="1" maxOccurs="1"/>`,
		`<xs:element name="language" type="xs:string" minOccurs="0" maxOccurs="1"/>`,
		`<xs:element name="actor" type="xs:string" minOccurs="1" maxOccurs="unbounded"/>`,
		`<xs:attribute name="uri" type="xs:anyURI"/>`,
	} {
		if !strings.Contains(xsd, want) {
			t.Errorf("schema missing %q:\n%s", want, xsd)
		}
	}
}

// TestEnhancedStructure reproduces the users-opinion aggregation example
// of §4: comments and rating embedded under a higher-level element.
func TestEnhancedStructure(t *testing.T) {
	page := core.NewPage("p1", `<html><body>
		<div class="r"><span>8.2/10</span></div>
		<div class="c"><p>great movie</p><p>loved it</p></div>
	</body></html>`)
	repo := rule.NewRepository("imdb-movies")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(repo.Record(rule.Rule{
		Name: "rating", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
		Format: rule.Text, Locations: []string{"BODY/DIV[1]/SPAN[1]/text()[1]"},
	}))
	must(repo.Record(rule.Rule{
		Name: "comment", Optionality: rule.Optional, Multiplicity: rule.Multivalued,
		Format: rule.Text, Locations: []string{"BODY/DIV[2]/P[position()>=1]/text()[1]"},
	}))
	must(repo.SetStructure([]rule.StructureNode{
		{Name: "users-opinion", Children: []rule.StructureNode{
			{Name: "rating", Component: "rating"},
			{Name: "comment", Component: "comment"},
		}},
	}))
	p, err := NewProcessor(repo)
	must(err)
	doc, failures := p.ExtractCluster([]*core.Page{page})
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	pageEl := doc.Children[0]
	opinion := pageEl.Find("users-opinion")
	if opinion == nil {
		t.Fatalf("users-opinion aggregate missing:\n%s", doc.XMLString())
	}
	if opinion.Find("rating") == nil || len(opinion.FindAll("comment")) != 2 {
		t.Errorf("aggregate content wrong:\n%s", doc.XMLString())
	}
	// The schema must nest accordingly.
	xsd := GenerateSchema(repo)
	if !strings.Contains(xsd, `<xs:element name="users-opinion"`) {
		t.Errorf("schema missing aggregate:\n%s", xsd)
	}
	// Conformance check passes.
	if v := ValidateAgainstRepo(doc, repo); len(v) != 0 {
		t.Errorf("conformance violations: %v", v)
	}
}

func TestFailureDetectionMissingMandatory(t *testing.T) {
	repo := figure5Repo(t)
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	pages := moviePages()
	pages = append(pages, core.NewPage("http://imdb.com/title/broken/",
		`<html><body><p>page without runtime</p></body></html>`))
	_, failures := p.ExtractCluster(pages)
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(failures), failures)
	}
	if failures[0].Kind != FailureMissingMandatory || failures[0].Component != "runtime" {
		t.Errorf("failure = %v", failures[0])
	}
}

func TestFailureDetectionMultipleValues(t *testing.T) {
	repo := rule.NewRepository("stocks")
	if err := repo.Record(rule.Rule{
		Name: "price", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
		Format: rule.Text, Locations: []string{"BODY//SPAN/text()"},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	page := core.NewPage("q1", `<html><body><span>10.5</span><span>11.2</span></body></html>`)
	doc, failures := p.ExtractCluster([]*core.Page{page})
	if len(failures) != 1 || failures[0].Kind != FailureMultipleValues {
		t.Fatalf("failures = %v", failures)
	}
	// The first value is still extracted (degraded, not dropped).
	if got := doc.Children[0].Find("price").Text; got != "10.5" {
		t.Errorf("extracted price = %q", got)
	}
}

// TestEndToEndExtractionFromInducedRules wires corpus → induction →
// extraction: the values extracted by induced rules must equal ground
// truth on every page.
func TestEndToEndExtractionFromInducedRules(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(77, 30))
	sample, _ := cl.RepresentativeSplit(10)
	b := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	results, err := b.BuildAll(repo, cl.ComponentNames())
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range results {
		if !res.OK {
			t.Fatalf("%s did not converge", name)
		}
	}
	p, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	doc, failures := p.ExtractCluster(cl.Pages)
	if len(failures) != 0 {
		t.Errorf("failures on clean corpus: %v", failures)
	}
	if len(doc.Children) != len(cl.Pages) {
		t.Fatalf("page elements = %d, want %d", len(doc.Children), len(cl.Pages))
	}
	for i, page := range cl.Pages {
		el := doc.Children[i]
		for _, comp := range cl.ComponentNames() {
			want := cl.TruthStrings(page, comp)
			var got []string
			for _, c := range el.FindAll(comp) {
				got = append(got, c.Text)
			}
			if strings.Join(want, "\x00") != strings.Join(got, "\x00") {
				t.Errorf("%s %s: got %v, want %v", page.URI, comp, got, want)
			}
		}
	}
	if v := ValidateAgainstRepo(doc, repo); len(v) != 0 {
		t.Errorf("conformance violations: %v", v)
	}
}

func TestElementHelpers(t *testing.T) {
	e := NewElement("root")
	a := e.Add(NewElement("a"))
	a.Text = "1"
	b := e.Add(NewElement("b"))
	b.Text = "2 < 3 & 4"
	e.SetAttr("id", `x"y`)
	if e.Find("a") != a || e.Find("zz") != nil {
		t.Error("Find")
	}
	if len(e.FindAll("b")) != 1 {
		t.Error("FindAll")
	}
	xml := e.XMLString()
	if !strings.Contains(xml, "&lt; 3 &amp; 4") {
		t.Errorf("text escaping: %s", xml)
	}
	if !strings.Contains(xml, `id="x&quot;y"`) {
		t.Errorf("attr escaping: %s", xml)
	}
	empty := NewElement("empty")
	if !strings.Contains(empty.XMLString(), "<empty/>") {
		t.Error("self-closing empty element")
	}
}
