package pipeline

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/resilient"
)

type sliceSource struct {
	pages []*core.Page
	i     int
}

func (s *sliceSource) Next(ctx context.Context) (*core.Page, error) {
	if s.i >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.i]
	s.i++
	return p, nil
}

type collectSink struct {
	mu    sync.Mutex
	items []*Item
}

func (s *collectSink) Emit(it *Item) error {
	s.mu.Lock()
	s.items = append(s.items, it)
	s.mu.Unlock()
	return nil
}

func (s *collectSink) Close() error { return nil }

// TestRunQuarantinesExtractorPanic: a page that makes the extractor
// panic fails as its own item — the run completes, other pages extract,
// and the panic surfaces as a structured *PageError.
func TestRunQuarantinesExtractorPanic(t *testing.T) {
	pages := []*core.Page{
		{URI: "http://s/ok1"}, {URI: "http://s/poison"}, {URI: "http://s/ok2"},
	}
	var panics []string
	cfg := Config{
		Workers:    2,
		Classifier: FixedRepo("r"),
		Extractor: extractorFunc(func(ctx context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error) {
			if strings.Contains(p.URI, "poison") {
				panic("poisoned rule: nil template")
			}
			return &extract.Element{}, nil, nil, nil
		}),
		OnPanic: func(stage string, pe *resilient.PanicError) {
			panics = append(panics, stage+": "+pe.Error())
		},
	}
	sink := &collectSink{}
	stats, err := Run(context.Background(), cfg, &sliceSource{pages: pages}, sink)
	if err != nil {
		t.Fatalf("run aborted: %v (a page panic must not abort the run)", err)
	}
	if stats.Pages != 3 || stats.Extracted != 2 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v, want 3 pages / 2 extracted / 1 error", stats)
	}
	var failed *Item
	for _, it := range sink.items {
		if it.Err != nil {
			failed = it
		}
	}
	if failed == nil || !strings.Contains(failed.Page.URI, "poison") {
		t.Fatalf("failed item = %+v, want the poison page", failed)
	}
	var pageErr *PageError
	if !errors.As(failed.Err, &pageErr) || !strings.Contains(pageErr.URI, "poison") {
		t.Fatalf("err = %v, want *PageError naming the page", failed.Err)
	}
	var pe *resilient.PanicError
	if !errors.As(failed.Err, &pe) {
		t.Fatalf("err = %v, want wrapped *resilient.PanicError", failed.Err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if len(panics) != 1 || !strings.Contains(panics[0], "extract") {
		t.Fatalf("OnPanic observed %v, want one extract-stage panic", panics)
	}
}

// TestRunQuarantinesClassifierPanic: same policy for the classify stage.
func TestRunQuarantinesClassifierPanic(t *testing.T) {
	pages := []*core.Page{{URI: "http://s/a"}, {URI: "http://s/b"}}
	cfg := Config{
		Workers: 1,
		Classifier: ClassifierFunc(func(p *core.Page) (string, float64, error) {
			if strings.HasSuffix(p.URI, "/a") {
				panic("router table corrupt")
			}
			return "r", 1, nil
		}),
	}
	sink := &collectSink{}
	stats, err := Run(context.Background(), cfg, &sliceSource{pages: pages}, sink)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if stats.Pages != 2 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v, want 2 pages / 1 error", stats)
	}
	var pe *resilient.PanicError
	if !errors.As(sink.items[0].Err, &pe) {
		t.Fatalf("item 0 err = %v, want PanicError", sink.items[0].Err)
	}
}

type extractorFunc func(ctx context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error)

func (f extractorFunc) Extract(ctx context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error) {
	return f(ctx, repo, p)
}
