package pipeline

import (
	"context"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/rule"
)

// TestTelemetryCountsRun: one instrumented run moves every page through
// all four stages, with the counters to show for it and nothing left
// in flight.
func TestTelemetryCountsRun(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(81, 12))
	repo := buildCluster(t, cl)
	ex, err := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry()
	_, err = Run(context.Background(), Config{
		Workers:    4,
		Classifier: FixedRepo("movies"),
		Extractor:  ex,
		Telemetry:  tel,
	}, NewPageSource(cl.Pages), &collected{})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d stages, want 4", len(snap))
	}
	wantOrder := []string{"source", "classify", "extract", "sink"}
	n := int64(len(cl.Pages))
	for i, st := range snap {
		if st.Stage != wantOrder[i] {
			t.Errorf("stage %d is %q, want %q", i, st.Stage, wantOrder[i])
		}
		if st.InFlight != 0 {
			t.Errorf("stage %s still has %d in flight after the run", st.Stage, st.InFlight)
		}
		if st.Latency.Count < n {
			t.Errorf("stage %s observed %d latencies, want ≥ %d", st.Stage, st.Latency.Count, n)
		}
		if st.Errors != 0 {
			t.Errorf("stage %s counted %d errors on a clean run", st.Stage, st.Errors)
		}
	}
}

// TestTelemetryNilSafe: a nil *Telemetry must be fully inert — the
// un-instrumented configuration every existing caller still uses.
func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	if tel.Snapshot() != nil {
		t.Error("nil telemetry snapshot should be nil")
	}
	for name, s := range map[string]*StageStats{
		"source": tel.Source(), "classify": tel.Classify(),
		"extract": tel.Extract(), "sink": tel.Sink(),
	} {
		if s != nil {
			t.Fatalf("%s stats of nil telemetry should be nil", name)
		}
		t0 := s.Start()
		s.Done(t0, true) // must not panic
	}

	// And a whole run without telemetry still works.
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(82, 12))
	repo := buildCluster(t, cl)
	ex, err := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Config{
		Workers: 2, Classifier: FixedRepo("movies"), Extractor: ex,
	}, NewPageSource(cl.Pages), &collected{}); err != nil {
		t.Fatal(err)
	}
}

// TestStageStatsZeroAllocs pins the hot-path cost: one Start/Done pair
// must not allocate — this is what keeps per-page instrumentation free
// on the ingest path.
func TestStageStatsZeroAllocs(t *testing.T) {
	tel := NewTelemetry()
	s := tel.Extract()
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := s.Start()
		s.Done(t0, false)
	})
	if allocs != 0 {
		t.Fatalf("Start/Done allocates %.1f/op, want 0", allocs)
	}
}

// TestStageStatsErrorsAndInFlight: the gauge tracks open units and the
// error counter failed ones.
func TestStageStatsErrorsAndInFlight(t *testing.T) {
	tel := NewTelemetry()
	s := tel.Sink()
	t0 := s.Start()
	if got := tel.Snapshot()[3].InFlight; got != 1 {
		t.Fatalf("in-flight = %d mid-unit, want 1", got)
	}
	s.Done(t0, true)
	snap := tel.Snapshot()[3]
	if snap.InFlight != 0 || snap.Errors != 1 || snap.Latency.Count != 1 {
		t.Fatalf("after a failed unit: %+v", snap)
	}
	if snap.Latency.Sum < 0 || snap.Latency.Sum > time.Minute.Seconds() {
		t.Fatalf("implausible latency sum %v", snap.Latency.Sum)
	}
}
