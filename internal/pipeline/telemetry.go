package pipeline

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Telemetry instruments the pipeline spine: per-stage latency
// histograms, in-flight gauges and error counters for Source, Classify,
// Extract and Sink. One Telemetry is shared across every run the daemon
// executes (/ingest exchanges, /extract/batch requests, CLI runs wired
// through the same config), accumulating fleet-visible totals.
//
// The instrumentation is built for the ingest hot path: recording one
// stage observation is two atomic adds, a time read and a lock-free
// histogram update — no allocation, no mutex (the AllocsPerRun budget
// in telemetry_test.go pins this at 0 allocs/op). A nil *Telemetry is
// fully inert: every method no-ops, so un-instrumented runs pay only a
// nil check.
type Telemetry struct {
	source, classify, extract, sink StageStats
}

// NewTelemetry creates telemetry with preallocated histogram buckets
// (obs.DefaultLatencyBuckets).
func NewTelemetry() *Telemetry {
	t := &Telemetry{}
	for _, s := range []*StageStats{&t.source, &t.classify, &t.extract, &t.sink} {
		s.hist = obs.NewHistogram(nil)
	}
	return t
}

// Stage accessors (nil-safe): the per-stage stats, or nil when the
// telemetry itself is nil.

// Source returns the Source-stage stats.
func (t *Telemetry) Source() *StageStats {
	if t == nil {
		return nil
	}
	return &t.source
}

// Classify returns the Classify-stage stats.
func (t *Telemetry) Classify() *StageStats {
	if t == nil {
		return nil
	}
	return &t.classify
}

// Extract returns the Extract-stage stats.
func (t *Telemetry) Extract() *StageStats {
	if t == nil {
		return nil
	}
	return &t.extract
}

// Sink returns the Sink-stage stats.
func (t *Telemetry) Sink() *StageStats {
	if t == nil {
		return nil
	}
	return &t.sink
}

// StageStats accumulates one stage's counters. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type StageStats struct {
	hist     *obs.Histogram
	inFlight atomic.Int64
	errors   atomic.Int64
}

// Start marks one unit of stage work beginning: the in-flight gauge
// rises and the stage clock starts. The returned time is the zero value
// on a nil receiver, making the paired Done a no-op.
func (s *StageStats) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.inFlight.Add(1)
	return time.Now()
}

// Done completes the unit started at start: latency is observed,
// in-flight falls, and failed increments the stage error counter.
func (s *StageStats) Done(start time.Time, failed bool) {
	if s == nil {
		return
	}
	s.inFlight.Add(-1)
	if s.hist != nil {
		s.hist.Observe(time.Since(start).Seconds())
	}
	if failed {
		s.errors.Add(1)
	}
}

// StageSnapshot is a point-in-time copy of one stage's counters.
type StageSnapshot struct {
	Stage    string                `json:"stage"`
	InFlight int64                 `json:"inFlight"`
	Errors   int64                 `json:"errors"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// TelemetrySnapshot is the per-stage view exposed in /metrics, in
// pipeline order.
type TelemetrySnapshot []StageSnapshot

// Snapshot copies every stage's counters (nil telemetry: nil snapshot).
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	if t == nil {
		return nil
	}
	stages := []struct {
		name string
		s    *StageStats
	}{
		{"source", &t.source}, {"classify", &t.classify},
		{"extract", &t.extract}, {"sink", &t.sink},
	}
	out := make(TelemetrySnapshot, 0, len(stages))
	for _, st := range stages {
		out = append(out, StageSnapshot{
			Stage:    st.name,
			InFlight: st.s.inFlight.Load(),
			Errors:   st.s.errors.Load(),
			Latency:  st.s.hist.Snapshot(),
		})
	}
	return out
}
