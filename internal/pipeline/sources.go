package pipeline

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// PageParser turns one raw page into a parsed core.Page. The default
// parser is core.NewPage with a line-derived URI for anonymous pages;
// the extractd service plugs in its page-cache-aware parser instead.
type PageParser func(uri, html string) *core.Page

// ---------------------------------------------------------------------------
// In-memory source.

// PageSource streams an in-memory page slice — the source for tests,
// benchmarks and callers that already gathered their pages.
type PageSource struct {
	pages []*core.Page
	next  int
}

// NewPageSource wraps pages in a Source.
func NewPageSource(pages []*core.Page) *PageSource {
	return &PageSource{pages: pages}
}

// Next implements Source.
func (s *PageSource) Next(ctx context.Context) (*core.Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.next]
	s.next++
	return p, nil
}

// ---------------------------------------------------------------------------
// Manifest (pages directory) source.

// Manifest is the pages.json index of a pages directory, the on-disk
// interchange format shared by crawl, sitegen, clusterpages and extract.
type Manifest struct {
	Cluster string `json:"cluster"`
	// Pages maps page URI → HTML file name (relative to the directory).
	Pages map[string]string `json:"pages"`
}

// LoadManifest reads dir/pages.json.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "pages.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("pipeline: %s/pages.json: %w", dir, err)
	}
	return &m, nil
}

// Write saves the manifest as dir/pages.json.
func (m *Manifest) Write(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "pages.json"), append(data, '\n'), 0o644)
}

// SortedURIs returns the page URIs ordered by their file names — the
// stable page order every driver uses.
func (m *Manifest) SortedURIs() []string {
	uris := make([]string, 0, len(m.Pages))
	for uri := range m.Pages {
		uris = append(uris, uri)
	}
	sort.Slice(uris, func(i, j int) bool { return m.Pages[uris[i]] < m.Pages[uris[j]] })
	return uris
}

// ManifestSource streams the pages of a pages directory one at a time,
// reading each HTML file only when the pipeline pulls it.
type ManifestSource struct {
	dir   string
	man   *Manifest
	uris  []string
	next  int
	parse PageParser
}

// NewManifestSource opens a pages directory (crawl/sitegen/clusterpages
// output). parse may be nil for the default parser.
func NewManifestSource(dir string, parse PageParser) (*ManifestSource, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	return &ManifestSource{dir: dir, man: man, uris: man.SortedURIs(), parse: parse}, nil
}

// Manifest exposes the loaded manifest (cluster name, page count).
func (s *ManifestSource) Manifest() *Manifest { return s.man }

// Next implements Source. An unreadable page file is a page-level error;
// the run continues with the remaining pages.
func (s *ManifestSource) Next(ctx context.Context) (*core.Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.next >= len(s.uris) {
		return nil, io.EOF
	}
	uri := s.uris[s.next]
	s.next++
	html, err := os.ReadFile(filepath.Join(s.dir, s.man.Pages[uri]))
	if err != nil {
		return nil, &PageError{URI: uri, Err: err}
	}
	if s.parse != nil {
		return s.parse(uri, string(html)), nil
	}
	return core.NewPage(uri, string(html)), nil
}

// ---------------------------------------------------------------------------
// NDJSON source.

// PageLine is one NDJSON input line: a page as shipped to POST /ingest
// and /extract/batch, and as emitted by crawl -ndjson.
type PageLine struct {
	URI  string `json:"uri"`
	HTML string `json:"html"`
}

// NDJSONSource streams pages from NDJSON {"uri","html"} lines. Blank
// lines are skipped but counted, so reported line numbers match the
// physical input; malformed lines and lines exceeding maxLine surface as
// page-level errors carrying the line number.
type NDJSONSource struct {
	sc      *bufio.Scanner
	line    int
	parse   PageParser
	maxLine int
	dead    bool
}

// NewNDJSONSource reads NDJSON pages from r. maxLine bounds one line in
// bytes (≤ 0: 16 MiB); parse may be nil for the default parser.
func NewNDJSONSource(r io.Reader, maxLine int, parse PageParser) *NDJSONSource {
	if maxLine <= 0 {
		maxLine = 16 << 20
	}
	sc := bufio.NewScanner(r)
	// The scanner's effective cap is max(cap(buf), maxLine), so the
	// initial buffer must not exceed the configured line cap.
	initial := 64 * 1024
	if initial > maxLine {
		initial = maxLine
	}
	sc.Buffer(make([]byte, initial), maxLine)
	return &NDJSONSource{sc: sc, parse: parse, maxLine: maxLine}
}

// Next implements Source.
func (s *NDJSONSource) Next(ctx context.Context) (*core.Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.dead {
		return nil, io.EOF
	}
	for s.sc.Scan() {
		s.line++
		raw := strings.TrimSpace(s.sc.Text())
		if raw == "" {
			continue
		}
		var in PageLine
		if err := json.Unmarshal([]byte(raw), &in); err != nil {
			return nil, &PageError{Line: s.line, Err: err}
		}
		uri := in.URI
		if uri == "" {
			uri = fmt.Sprintf("line:%d", s.line)
		}
		if s.parse != nil {
			return s.parse(in.URI, in.HTML), nil
		}
		return core.NewPage(uri, in.HTML), nil
	}
	if err := s.sc.Err(); err != nil {
		// A line over the cap (or a broken reader) ends the stream: the
		// scanner cannot resynchronize, so trailing data would be
		// misattributed. The error is page-level (the caller sees it in
		// the result stream) and the source then reports EOF.
		s.dead = true
		return nil, &PageError{Line: s.line + 1, Err: err}
	}
	return nil, io.EOF
}
