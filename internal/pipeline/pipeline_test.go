package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/rule"
)

// buildCluster induces a repository for a corpus cluster, offline-style.
func buildCluster(t testing.TB, cl *corpus.Cluster) *rule.Repository {
	t.Helper()
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		t.Fatal(err)
	}
	return repo
}

// collected replays every emitted item for assertions.
type collected struct {
	mu     sync.Mutex
	items  []*Item
	closed bool
}

func (c *collected) Emit(it *Item) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = append(c.items, it)
	return nil
}

func (c *collected) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// TestRunFixedRepo: every corpus page flows source → extract → sink with
// a fixed classification, in source order.
func TestRunFixedRepo(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(31, 20))
	repo := buildCluster(t, cl)
	ex, err := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collected{}
	stats, err := Run(context.Background(), Config{
		Workers:    4,
		Classifier: FixedRepo("movies"),
		Extractor:  ex,
	}, NewPageSource(cl.Pages), sink)
	if err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Error("sink not closed")
	}
	if stats.Pages != len(cl.Pages) || stats.Extracted != len(cl.Pages) {
		t.Errorf("stats = %+v, want %d pages extracted", stats, len(cl.Pages))
	}
	if stats.Routed["movies"] != len(cl.Pages) {
		t.Errorf("routed = %v", stats.Routed)
	}
	for i, it := range sink.items {
		if it.Seq != i {
			t.Fatalf("item %d has seq %d: emission out of source order", i, it.Seq)
		}
		if it.Page.URI != cl.Pages[i].URI {
			t.Fatalf("item %d is page %s, want %s", i, it.Page.URI, cl.Pages[i].URI)
		}
		if it.Err != nil || it.Element == nil {
			t.Fatalf("item %d: err=%v element=%v", i, it.Err, it.Element)
		}
	}
}

// TestRunRoutedMixedClusters: pages from two clusters interleaved, routed
// by signature to the right repository; alien pages unrouted.
func TestRunRoutedMixedClusters(t *testing.T) {
	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(32, 16))
	books := corpus.GenerateBooks(corpus.DefaultBookProfile(33, 16))
	forum := corpus.GenerateForum(corpus.DefaultForumProfile(34, 4))

	router := cluster.NewRouter(0)
	for name, cl := range map[string]*corpus.Cluster{"imdb-movies": movies, "books": books} {
		var infos []cluster.PageInfo
		for _, p := range cl.Pages[:8] {
			infos = append(infos, cluster.PageInfo{URI: p.URI, Doc: p.Doc})
		}
		router.Register(name, cluster.SignatureOf(infos))
	}
	ex, err := NewStaticExtractor(map[string]*rule.Repository{
		"imdb-movies": buildCluster(t, movies),
		"books":       buildCluster(t, books),
	})
	if err != nil {
		t.Fatal(err)
	}

	var pages []*core.Page
	want := map[string]string{}
	for i := 8; i < 16; i++ {
		pages = append(pages, movies.Pages[i], books.Pages[i])
		want[movies.Pages[i].URI] = "imdb-movies"
		want[books.Pages[i].URI] = "books"
	}
	pages = append(pages, forum.Pages...)

	sink := &collected{}
	stats, err := Run(context.Background(), Config{
		Classifier: RouteWith(router),
		Extractor:  ex,
	}, NewPageSource(pages), sink)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, it := range sink.items {
		if w, ok := want[it.Page.URI]; ok {
			if it.Err == nil && it.Repo == w {
				correct++
			} else {
				t.Logf("page %s: repo=%q err=%v", it.Page.URI, it.Repo, it.Err)
			}
		} else if !errors.Is(it.Err, ErrUnrouted) {
			t.Errorf("forum page %s not unrouted: repo=%q err=%v", it.Page.URI, it.Repo, it.Err)
		}
	}
	if acc := float64(correct) / float64(len(want)); acc < 0.95 {
		t.Errorf("routing accuracy %.2f (%d/%d)", acc, correct, len(want))
	}
	if stats.Unrouted != len(forum.Pages) {
		t.Errorf("stats.Unrouted = %d, want %d", stats.Unrouted, len(forum.Pages))
	}
}

// TestRunBoundedInFlight: the source is never drained more than the
// in-flight window ahead of the sink — the bounded-memory property.
func TestRunBoundedInFlight(t *testing.T) {
	const pages, buffer = 64, 4
	var produced, emitted atomic.Int64
	var maxLead int64
	src := ClassifierFunc(nil) // silence unused lint via explicit type below
	_ = src

	mk := func(i int) *core.Page {
		return core.NewPage(fmt.Sprintf("http://x/p%d", i), "<html><body>p</body></html>")
	}
	source := sourceFunc(func(ctx context.Context) (*core.Page, error) {
		n := produced.Add(1)
		if n > pages {
			return nil, io.EOF
		}
		if lead := n - emitted.Load(); lead > maxLead {
			maxLead = lead
		}
		return mk(int(n)), nil
	})
	sink := FuncSink(func(it *Item) error {
		emitted.Add(1)
		return nil
	})
	if _, err := Run(context.Background(), Config{Workers: 2, Buffer: buffer}, source, sink); err != nil {
		t.Fatal(err)
	}
	// The window is Buffer items in ordered + workers in flight + the one
	// being fed; anything near `pages` means the source was slurped.
	if limit := int64(buffer + 2 + 2); maxLead > limit {
		t.Errorf("source ran %d items ahead of the sink, want <= %d", maxLead, limit)
	}
}

type sourceFunc func(ctx context.Context) (*core.Page, error)

func (f sourceFunc) Next(ctx context.Context) (*core.Page, error) { return f(ctx) }

// TestRunPageErrorsContinue: a malformed NDJSON line fails its own item;
// the rest of the stream still extracts.
func TestRunPageErrorsContinue(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(35, 3))
	repo := buildCluster(t, cl)
	ex, _ := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.Encode(PageLine{URI: cl.Pages[0].URI, HTML: dom.Render(cl.Pages[0].Doc)})
	buf.WriteString("{broken json\n\n")
	enc.Encode(PageLine{URI: cl.Pages[1].URI, HTML: dom.Render(cl.Pages[1].Doc)})

	sink := &collected{}
	stats, err := Run(context.Background(), Config{
		Classifier: FixedRepo("movies"),
		Extractor:  ex,
	}, NewNDJSONSource(strings.NewReader(buf.String()), 0, nil), sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 3 || stats.Extracted != 2 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	var pe *PageError
	if !errors.As(sink.items[1].Err, &pe) || pe.Line != 2 {
		t.Errorf("item 1 error = %v, want PageError at line 2", sink.items[1].Err)
	}
}

// TestRunSinkErrorAborts: a failing sink stops the run with its error.
func TestRunSinkErrorAborts(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(36, 10))
	boom := errors.New("disk full")
	n := 0
	sink := FuncSink(func(it *Item) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	_, err := Run(context.Background(), Config{}, NewPageSource(cl.Pages), sink)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestRunCancel: cancelling the context ends the run promptly.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	i := 0
	source := sourceFunc(func(ctx context.Context) (*core.Page, error) {
		i++
		if i == 5 {
			cancel()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return core.NewPage("http://x/p", "<html></html>"), nil
	})
	_, err := Run(ctx, Config{}, source, &collected{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

// TestManifestSourceAndPagesDirSink round-trip a pages directory through
// the pipeline with no extraction stage (the crawl shape).
func TestManifestSourceAndPagesDirSink(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(37, 6))
	dir := t.TempDir()

	sink, err := NewPagesDirSink(dir, "movies")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), Config{}, NewPageSource(cl.Pages), sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 6 || sink.PageCount() != 6 {
		t.Fatalf("stats=%+v written=%d", stats, sink.PageCount())
	}

	src, err := NewManifestSource(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Manifest().Cluster != "movies" {
		t.Errorf("cluster = %q", src.Manifest().Cluster)
	}
	back := &collected{}
	stats, err = Run(context.Background(), Config{}, src, back)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 6 {
		t.Fatalf("reloaded %d pages", stats.Pages)
	}
	uris := map[string]bool{}
	for _, it := range back.items {
		uris[it.Page.URI] = true
	}
	for _, p := range cl.Pages {
		if !uris[p.URI] {
			t.Errorf("page %s lost in round-trip", p.URI)
		}
	}
}

// TestManifestSourceMissingFile: a manifest entry whose file is gone is a
// page-level error, not a run abort.
func TestManifestSourceMissingFile(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(38, 3))
	dir := t.TempDir()
	sink, _ := NewPagesDirSink(dir, "movies")
	if _, err := Run(context.Background(), Config{}, NewPageSource(cl.Pages), sink); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "page001.html")); err != nil {
		t.Fatal(err)
	}
	src, err := NewManifestSource(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	back := &collected{}
	stats, err := Run(context.Background(), Config{}, src, back)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 3 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestAggregateXMLMatchesExtractCluster: the pipeline's aggregated XML
// document is byte-identical to the offline processor's ExtractCluster —
// the refactored extract CLI cannot silently change its output.
func TestAggregateXMLMatchesExtractCluster(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(39, 12))
	repo := buildCluster(t, cl)
	ex, err := NewStaticExtractor(map[string]*rule.Repository{repo.Cluster: repo})
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	agg := NewAggregateXML(&got, repo.Cluster, false)
	if _, err := Run(context.Background(), Config{
		Classifier: FixedRepo(repo.Cluster),
		Extractor:  ex,
	}, NewPageSource(cl.Pages), agg); err != nil {
		t.Fatal(err)
	}

	proc := ex[repo.Cluster]
	doc, _ := proc.ExtractCluster(cl.Pages)
	var want strings.Builder
	if err := doc.WriteXML(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("aggregate XML differs from ExtractCluster:\n--- pipeline ---\n%s\n--- offline ---\n%s",
			got.String(), want.String())
	}
}

// TestNDJSONSourceOversizedLine: a line beyond the cap surfaces as a
// page-level error and ends the stream cleanly.
func TestNDJSONSourceOversizedLine(t *testing.T) {
	line1, _ := json.Marshal(PageLine{URI: "http://x/1", HTML: "<html><body>ok</body></html>"})
	big := strings.Repeat("x", 4096)
	input := string(line1) + "\n" + `{"uri":"http://x/2","html":"` + big + `"}` + "\n"

	sink := &collected{}
	stats, err := Run(context.Background(), Config{},
		NewNDJSONSource(strings.NewReader(input), 512, nil), sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 2 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if sink.items[1].Err == nil {
		t.Error("oversized line produced no error item")
	}
}

// TestNDJSONSourceRecoversAcrossBadLines: consecutive malformed lines
// each fail as their own item with the right physical line number —
// blank lines counted — and the stream keeps delivering every good page
// around them.
func TestNDJSONSourceRecoversAcrossBadLines(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(61, 10))
	repo := buildCluster(t, cl)
	ex, _ := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.Encode(PageLine{URI: cl.Pages[0].URI, HTML: dom.Render(cl.Pages[0].Doc)}) // line 1
	buf.WriteString("{broken\n")                                                  // line 2
	buf.WriteString("also broken}\n")                                             // line 3
	buf.WriteString("\n")                                                         // line 4 (blank, skipped)
	enc.Encode(PageLine{URI: cl.Pages[1].URI, HTML: dom.Render(cl.Pages[1].Doc)}) // line 5
	buf.WriteString("[1,2]\n")                                                    // line 6 (valid JSON, wrong shape)
	enc.Encode(PageLine{URI: cl.Pages[2].URI, HTML: dom.Render(cl.Pages[2].Doc)}) // line 7

	sink := &collected{}
	stats, err := Run(context.Background(), Config{
		Classifier: FixedRepo("movies"),
		Extractor:  ex,
	}, NewNDJSONSource(strings.NewReader(buf.String()), 0, nil), sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 6 || stats.Extracted != 3 || stats.PageErrors != 3 {
		t.Fatalf("stats = %+v, want 6 items: 3 extracted, 3 line errors", stats)
	}
	wantLines := map[int]int{1: 2, 2: 3, 4: 6} // item index → failing input line
	for idx, line := range wantLines {
		var pe *PageError
		if !errors.As(sink.items[idx].Err, &pe) || pe.Line != line {
			t.Errorf("item %d error = %v, want PageError at line %d", idx, sink.items[idx].Err, line)
		}
	}
	for _, idx := range []int{0, 3, 5} {
		if sink.items[idx].Err != nil || sink.items[idx].Element == nil {
			t.Errorf("item %d not extracted: err=%v", idx, sink.items[idx].Err)
		}
	}
}

// TestNDJSONSourceTruncatedFinalLine: an upload cut off mid-JSON (no
// trailing newline) fails as a page-level error on its own line; the
// pages before it still extract and the run completes.
func TestNDJSONSourceTruncatedFinalLine(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(62, 8))
	repo := buildCluster(t, cl)
	ex, _ := NewStaticExtractor(map[string]*rule.Repository{"movies": repo})

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.Encode(PageLine{URI: cl.Pages[0].URI, HTML: dom.Render(cl.Pages[0].Doc)})
	full, _ := json.Marshal(PageLine{URI: cl.Pages[1].URI, HTML: dom.Render(cl.Pages[1].Doc)})
	buf.WriteString(string(full[:len(full)/2])) // connection died mid-line

	sink := &collected{}
	stats, err := Run(context.Background(), Config{
		Classifier: FixedRepo("movies"),
		Extractor:  ex,
	}, NewNDJSONSource(strings.NewReader(buf.String()), 0, nil), sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != 2 || stats.Extracted != 1 || stats.PageErrors != 1 {
		t.Fatalf("stats = %+v, want the whole page extracted and the torso failed", stats)
	}
	var pe *PageError
	if !errors.As(sink.items[1].Err, &pe) || pe.Line != 2 {
		t.Errorf("truncated line error = %v, want PageError at line 2", sink.items[1].Err)
	}
}

// TestNDJSONSourceNoResyncAfterOversize: once a line exceeds the cap the
// scanner cannot find the next boundary, so the source must report EOF
// rather than misattribute trailing bytes to invented pages.
func TestNDJSONSourceNoResyncAfterOversize(t *testing.T) {
	big := strings.Repeat("y", 2048)
	input := `{"uri":"http://x/big","html":"` + big + `"}` + "\n" +
		`{"uri":"http://x/after","html":"<p>x</p>"}` + "\n"
	src := NewNDJSONSource(strings.NewReader(input), 256, nil)

	_, err := src.Next(context.Background())
	var pe *PageError
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Fatalf("first Next = %v, want PageError at line 1", err)
	}
	if _, err := src.Next(context.Background()); err != io.EOF {
		t.Fatalf("Next after oversize = %v, want io.EOF (no resync)", err)
	}
}
