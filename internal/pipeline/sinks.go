package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dom"
	"repro/internal/extract"
)

// flusher is the subset of http.Flusher the streaming sinks care about:
// pushing one finished result to the client before the next is ready.
type flusher interface{ Flush() }

// ---------------------------------------------------------------------------
// Raw-page sinks (no extraction stage).

// PagesDirSink writes raw pages as a pages directory (page%03d.html +
// pages.json) — the crawl CLI's output, consumable by clusterpages,
// retrozilla and extract.
type PagesDirSink struct {
	dir string
	man *Manifest
	n   int
}

// NewPagesDirSink creates dir (if needed) and returns the sink.
func NewPagesDirSink(dir, clusterName string) (*PagesDirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &PagesDirSink{dir: dir, man: &Manifest{Cluster: clusterName, Pages: map[string]string{}}}, nil
}

// Emit implements Sink. Items with page-level errors are skipped (a
// failed fetch has no page to save).
func (s *PagesDirSink) Emit(it *Item) error {
	if it.Err != nil || it.Page == nil || it.Page.Document() == nil {
		return nil
	}
	file := fmt.Sprintf("page%03d.html", s.n)
	s.n++
	if err := os.WriteFile(filepath.Join(s.dir, file), []byte(dom.Render(it.Page.Doc)), 0o644); err != nil {
		return err
	}
	s.man.Pages[it.Page.URI] = file
	return nil
}

// Close writes the manifest.
func (s *PagesDirSink) Close() error { return s.man.Write(s.dir) }

// PageCount reports how many pages were written.
func (s *PagesDirSink) PageCount() int { return s.n }

// PageNDJSONSink writes raw pages as NDJSON {"uri","html"} lines — the
// wire format POST /ingest consumes, so `crawl -ndjson | curl
// --data-binary @- .../ingest` migrates a live site without touching
// disk.
type PageNDJSONSink struct {
	w   io.Writer
	enc *json.Encoder
}

// NewPageNDJSONSink writes page lines to w.
func NewPageNDJSONSink(w io.Writer) *PageNDJSONSink {
	return &PageNDJSONSink{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *PageNDJSONSink) Emit(it *Item) error {
	if it.Err != nil || it.Page == nil || it.Page.Document() == nil {
		return nil
	}
	if err := s.enc.Encode(PageLine{URI: it.Page.URI, HTML: dom.Render(it.Page.Doc)}); err != nil {
		return err
	}
	if f, ok := s.w.(flusher); ok {
		f.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *PageNDJSONSink) Close() error { return nil }

// ---------------------------------------------------------------------------
// Extraction-result sinks.

// ResultLine is one NDJSON output line of an extraction run: the wire
// shape streamed by POST /ingest and written by extract -format ndjson.
type ResultLine struct {
	URI      string   `json:"uri"`
	Repo     string   `json:"repo,omitempty"`
	Score    float64  `json:"score,omitempty"`
	Record   any      `json:"record,omitempty"`
	Failures []string `json:"failures,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Trace is the request trace ID on lines streamed by POST /ingest —
	// the same ID the X-Trace-Id response header and the daemon's
	// structured logs carry, so one page's NDJSON line, request log and
	// (if it fed an induction job) job record correlate.
	Trace string `json:"trace,omitempty"`
}

// MakeResultLine renders one item as its NDJSON wire line.
func MakeResultLine(it *Item) ResultLine {
	line := ResultLine{Repo: it.Repo, Score: it.Score}
	if it.Page != nil {
		line.URI = it.Page.URI
	}
	if it.Err != nil {
		line.Error = it.Err.Error()
		return line
	}
	if it.Element != nil {
		line.Record = it.Element.JSONValue()
	}
	for _, f := range it.Failures {
		line.Failures = append(line.Failures, f.String())
	}
	return line
}

// NDJSONSink streams extraction results as NDJSON, one line per page,
// flushing after every line when the writer supports it — the sink
// behind POST /ingest's streamed response.
type NDJSONSink struct {
	w   io.Writer
	enc *json.Encoder
}

// NewNDJSONSink writes result lines to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *NDJSONSink) Emit(it *Item) error {
	if err := s.enc.Encode(MakeResultLine(it)); err != nil {
		return err
	}
	if f, ok := s.w.(flusher); ok {
		f.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *NDJSONSink) Close() error { return nil }

// XMLDirSink writes one XML document per extracted page
// (page%03d.xml), mirroring the input layout of a pages directory — the
// file-per-page migration target.
type XMLDirSink struct {
	dir string
	n   int
}

// NewXMLDirSink creates dir (if needed) and returns the sink.
func NewXMLDirSink(dir string) (*XMLDirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &XMLDirSink{dir: dir}, nil
}

// Emit implements Sink. Failed or unextracted items are skipped.
func (s *XMLDirSink) Emit(it *Item) error {
	if it.Err != nil || it.Element == nil {
		return nil
	}
	file := fmt.Sprintf("page%03d.xml", s.n)
	s.n++
	f, err := os.Create(filepath.Join(s.dir, file))
	if err != nil {
		return err
	}
	if err := it.Element.WriteXML(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close implements Sink.
func (s *XMLDirSink) Close() error { return nil }

// PageCount reports how many page documents were written.
func (s *XMLDirSink) PageCount() int { return s.n }

// AggregateXML assembles the paper's whole-cluster XML document: every
// extracted page element under one root (Figure 5), optionally grouped
// into one sub-root per repository when a routed run mixes clusters.
// Aggregation inherently buffers the output document; use XMLDirSink or
// NDJSONSink for runs that must stay flat in memory.
type AggregateXML struct {
	w    io.Writer
	root *extract.Element
	// groups maps repo name → sub-root, when grouping.
	groupByRepo bool
	groups      map[string]*extract.Element
	order       []string
}

// NewAggregateXML aggregates page elements under a root element named
// rootName, written to w on Close. When groupByRepo is set, pages are
// grouped under one child element per repository (first-seen order) —
// the multi-cluster site migration document.
func NewAggregateXML(w io.Writer, rootName string, groupByRepo bool) *AggregateXML {
	return &AggregateXML{
		w:           w,
		root:        extract.NewElement(rootName),
		groupByRepo: groupByRepo,
		groups:      map[string]*extract.Element{},
	}
}

// Emit implements Sink. Failed items are skipped (they are reported via
// Stats and, in CLIs, on stderr).
func (s *AggregateXML) Emit(it *Item) error {
	if it.Err != nil || it.Element == nil {
		return nil
	}
	if !s.groupByRepo || it.Repo == "" {
		s.root.Add(it.Element)
		return nil
	}
	g, ok := s.groups[it.Repo]
	if !ok {
		g = extract.NewElement(it.Repo)
		s.groups[it.Repo] = g
		s.order = append(s.order, it.Repo)
	}
	g.Add(it.Element)
	return nil
}

// Document returns the assembled document (valid after the run).
func (s *AggregateXML) Document() *extract.Element {
	if s.groupByRepo {
		for _, name := range s.order {
			s.root.Add(s.groups[name])
		}
		s.order = nil
	}
	return s.root
}

// Close writes the document.
func (s *AggregateXML) Close() error {
	doc := s.Document()
	if s.w == nil {
		return nil
	}
	return doc.WriteXML(s.w)
}

// ---------------------------------------------------------------------------
// Composition helpers.

// FuncSink adapts a function to Sink (Close is a no-op).
type FuncSink func(it *Item) error

// Emit implements Sink.
func (f FuncSink) Emit(it *Item) error { return f(it) }

// Close implements Sink.
func (f FuncSink) Close() error { return nil }

// MultiSink fans every item out to several sinks; the first error wins.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(it *Item) error {
	for _, s := range m {
		if err := s.Emit(it); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every sink, returning the first error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
