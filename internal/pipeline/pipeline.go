// Package pipeline is the single execution spine for whole-site
// ingestion: a streaming, bounded-concurrency run of
//
//	Source → Classify → Extract → Sink
//
// shared by the CLIs (crawl, extract, evaluate) and the extractd daemon.
// The paper's end goal (Figure 1) is migrating a whole site to XML; every
// driver used to re-implement its own gather→parse→apply loop, each with
// different buffering and error behaviour. Here the loop exists once:
// pages stream out of a Source, are classified to a rule repository
// (fixed, or routed by cluster signature), extracted on a bounded worker
// set and emitted to a Sink in source order — with backpressure end to
// end, so a site of any size flows through a fixed memory envelope.
//
// Stages are optional: a nil Classifier passes pages through unrouted
// (fixed-repository extraction), a nil Extractor copies pages straight to
// the sink (the crawl CLI: gather without extracting).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/resilient"
)

// Item is one page's journey through the pipeline, as delivered to the
// Sink. Exactly one of the failure modes holds per item: Err is set (the
// page never produced a record — classification or extraction refused
// it), or Element is set with zero or more detected extraction Failures.
type Item struct {
	// Seq is the page's arrival index, starting at 0. Ordered runs emit
	// items in Seq order.
	Seq int
	// Page is the parsed input page.
	Page *core.Page
	// Repo names the repository the page was classified to ("" when the
	// pipeline runs without classification and extraction).
	Repo string
	// Score is the router confidence for routed pages (1 for fixed
	// routes).
	Score float64
	// Element is the extracted record (nil when Err is set or the
	// pipeline has no Extractor).
	Element *extract.Element
	// Values is the flat component→values map behind Element.
	Values map[string][]string
	// Failures are the §7 extraction failures detected on this page.
	Failures []extract.Failure
	// Err is the page-level error, if the page could not be processed:
	// ErrUnrouted, a line decode error from an NDJSON source, an
	// extractor refusal. Page-level errors do not stop the run.
	Err error
}

// ErrUnrouted reports that no registered repository signature matched the
// page above the routing threshold — the page belongs to no cluster the
// system holds rules for.
var ErrUnrouted = errors.New("pipeline: page unrouted: no repository signature within threshold")

// PageError is a page-level input problem (for example one malformed
// NDJSON line): the Source reports it as an Item with Err set and the run
// continues. Any other Source error aborts the run.
type PageError struct {
	// Line is the 1-based physical input line, when the source is
	// line-oriented (0 otherwise).
	Line int
	// URI of the failed page, when known.
	URI string
	Err error
}

func (e *PageError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %v", e.Line, e.Err)
	}
	if e.URI != "" {
		return fmt.Sprintf("%s: %v", e.URI, e.Err)
	}
	return e.Err.Error()
}

func (e *PageError) Unwrap() error { return e.Err }

// Source produces the pages of a run, one at a time. Next returns io.EOF
// when the stream ends, a *PageError for a recoverable per-page problem,
// and any other error to abort the run.
type Source interface {
	Next(ctx context.Context) (*core.Page, error)
}

// Classifier assigns a page to a rule repository. Returning ErrUnrouted
// (or any error) marks the item failed without stopping the run.
type Classifier interface {
	Classify(p *core.Page) (repo string, score float64, err error)
}

// ClassifierFunc adapts a function to Classifier.
type ClassifierFunc func(p *core.Page) (string, float64, error)

// Classify implements Classifier.
func (f ClassifierFunc) Classify(p *core.Page) (string, float64, error) { return f(p) }

// FixedRepo classifies every page to one repository.
func FixedRepo(name string) Classifier {
	return ClassifierFunc(func(*core.Page) (string, float64, error) { return name, 1, nil })
}

// Extractor runs one page extraction against a named repository. It must
// be safe for concurrent calls.
type Extractor interface {
	Extract(ctx context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error)
}

// Sink consumes finished items. Emit is called from a single goroutine;
// an Emit error aborts the run (a broken sink must stop the stream, not
// silently drop results). Close is called exactly once after the last
// Emit of a successful run — sinks that assemble an aggregate document
// write it there.
type Sink interface {
	Emit(it *Item) error
	Close() error
}

// Config tunes one pipeline run.
type Config struct {
	// Workers is the classify+extract concurrency (default GOMAXPROCS).
	Workers int
	// Buffer is the depth of the inter-stage channels (default 2×
	// Workers). Together with Workers it caps the pages in flight:
	// sources are only drained as fast as the slowest downstream stage.
	Buffer int
	// Classifier routes pages to repositories; nil passes pages through
	// with Repo "".
	Classifier Classifier
	// Extractor extracts routed pages; nil copies pages to the sink
	// unextracted (classification errors, when a Classifier is set, still
	// mark items failed).
	Extractor Extractor
	// Telemetry, when non-nil, records per-stage latency histograms,
	// in-flight gauges and error counters for this run. The same
	// Telemetry may back many concurrent runs (the daemon shares one
	// across /ingest and /extract/batch traffic).
	Telemetry *Telemetry
	// OnPanic, when non-nil, observes every recovered stage panic. The
	// panicking page's item still fails with a *PageError wrapping a
	// *resilient.PanicError — a poisoned page must fail itself, never
	// the run.
	OnPanic func(stage string, pe *resilient.PanicError)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) buffer() int {
	if c.Buffer > 0 {
		return c.Buffer
	}
	return 2 * c.workers()
}

// Stats summarizes one pipeline run.
type Stats struct {
	// Pages is the number of items emitted (including failed ones).
	Pages int `json:"pages"`
	// Routed counts pages per repository they were classified to.
	Routed map[string]int `json:"routed,omitempty"`
	// Unrouted counts pages no repository signature claimed.
	Unrouted int `json:"unrouted,omitempty"`
	// PageErrors counts items with any page-level error (including
	// unrouted).
	PageErrors int `json:"pageErrors,omitempty"`
	// Extracted counts pages that produced a record.
	Extracted int `json:"extracted,omitempty"`
	// Failures totals the §7 extraction failures across all pages.
	Failures int `json:"failures,omitempty"`
}

func (s *Stats) observe(it *Item) {
	s.Pages++
	if it.Err != nil {
		s.PageErrors++
		if errors.Is(it.Err, ErrUnrouted) {
			s.Unrouted++
		}
		return
	}
	if it.Repo != "" {
		if s.Routed == nil {
			s.Routed = map[string]int{}
		}
		s.Routed[it.Repo]++
	}
	if it.Element != nil {
		s.Extracted++
	}
	s.Failures += len(it.Failures)
}

// Run drives one pipeline: pages stream from src through classification
// and extraction into sink, at most Workers extractions in flight, items
// emitted in source order. Page-level problems travel as items with Err
// set; Run returns a non-nil error only when the run itself broke (source
// failure, sink failure, context cancelled). Sink.Close runs only when
// the run succeeded — a failed run must not finalize sink artifacts.
//
// Backpressure: the source is pulled only while fewer than Buffer items
// are awaiting emission, and the sink is fed in order — so a slow sink
// (an HTTP client reading results) throttles the source (a crawl, a
// request body) through a fixed in-flight window.
func Run(ctx context.Context, cfg Config, src Source, sink Sink) (Stats, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		item *Item
		done chan struct{}
	}
	// work hands jobs to workers; ordered fixes the emission order and —
	// being the only buffered stage — caps the in-flight window.
	work := make(chan *job)
	ordered := make(chan *job, cfg.buffer())

	var srcErr error
	go func() {
		defer close(work)
		defer close(ordered)
		srcStats := cfg.Telemetry.Source()
		for seq := 0; ; seq++ {
			t0 := srcStats.Start()
			page, err := src.Next(ctx)
			srcStats.Done(t0, err != nil && err != io.EOF)
			it := &Item{Seq: seq, Page: page}
			var pe *PageError
			switch {
			case err == io.EOF:
				return
			case errors.As(err, &pe):
				it.Err = pe
				if page == nil {
					it.Page = &core.Page{URI: pe.URI}
				}
			case err != nil:
				// An error after the run was already cancelled (sink
				// failure, caller cancel) is shutdown noise, not the
				// run's cause.
				if ctx.Err() == nil {
					srcErr = err
				}
				cancel()
				return
			}
			j := &job{item: it, done: make(chan struct{})}
			if it.Err != nil {
				close(j.done) // input error: skip the worker stage
			} else {
				select {
				case work <- j:
				case <-ctx.Done():
					return
				}
			}
			select {
			case ordered <- j:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < cfg.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				process(ctx, cfg, j.item)
				close(j.done)
			}
		}()
	}

	// Emitter (this goroutine): strict source order, single-threaded
	// sink access. Every job in ordered was either handed to a worker
	// (its done will close) or pre-closed, so this loop always drains.
	var stats Stats
	var emitErr error
	sinkStats := cfg.Telemetry.Sink()
	for j := range ordered {
		<-j.done
		stats.observe(j.item)
		if emitErr == nil && ctx.Err() == nil {
			t0 := sinkStats.Start()
			err := sink.Emit(j.item)
			sinkStats.Done(t0, err != nil)
			if err != nil {
				emitErr = fmt.Errorf("pipeline: sink: %w", err)
				cancel()
			}
		}
	}
	wg.Wait()

	// Close — and thereby finalize the sink's artifacts (manifest,
	// aggregate document) — only when the run succeeded: an aborted
	// crawl must not leave a valid-looking half-empty pages directory
	// behind. None of the sinks hold OS resources of their own; callers
	// that opened files close them regardless of the run's outcome.
	switch {
	case srcErr != nil:
		return stats, fmt.Errorf("pipeline: source: %w", srcErr)
	case emitErr != nil:
		return stats, emitErr
	case ctx.Err() != nil:
		return stats, ctx.Err()
	}
	if err := sink.Close(); err != nil {
		return stats, fmt.Errorf("pipeline: sink close: %w", err)
	}
	return stats, nil
}

// process runs classify + extract for one item, in a worker goroutine.
func process(ctx context.Context, cfg Config, it *Item) {
	if cfg.Classifier != nil {
		cs := cfg.Telemetry.Classify()
		t0 := cs.Start()
		repo, score, err := safeClassify(cfg, it.Page)
		cs.Done(t0, err != nil)
		if err != nil {
			it.Err = pageFail(it, err)
			return
		}
		it.Repo, it.Score = repo, score
	}
	if cfg.Extractor == nil {
		return
	}
	es := cfg.Telemetry.Extract()
	t0 := es.Start()
	el, values, fails, err := safeExtract(ctx, cfg, it.Repo, it.Page)
	es.Done(t0, err != nil)
	if err != nil {
		it.Err = pageFail(it, err)
		return
	}
	it.Element, it.Values, it.Failures = el, values, fails
}

// pageFail wraps a recovered stage panic as a *PageError naming the
// page; ordinary stage errors pass through unchanged (their text is
// API surface — ErrUnrouted, extractor refusals).
func pageFail(it *Item, err error) error {
	var pe *resilient.PanicError
	if errors.As(err, &pe) {
		uri := ""
		if it.Page != nil {
			uri = it.Page.URI
		}
		return &PageError{URI: uri, Err: err}
	}
	return err
}

// safeClassify quarantines a classifier panic into an error.
func safeClassify(cfg Config, p *core.Page) (repo string, score float64, err error) {
	defer recoverStage(cfg, "classify", &err)
	return cfg.Classifier.Classify(p)
}

// safeExtract quarantines an extractor panic into an error.
func safeExtract(ctx context.Context, cfg Config, repo string, p *core.Page) (el *extract.Element, values map[string][]string, fails []extract.Failure, err error) {
	defer recoverStage(cfg, "extract", &err)
	return cfg.Extractor.Extract(ctx, repo, p)
}

// recoverStage converts a stage panic into *err and reports it.
func recoverStage(cfg Config, stage string, err *error) {
	if v := recover(); v != nil {
		pe := &resilient.PanicError{Val: v, Stack: debug.Stack()}
		*err = pe
		if cfg.OnPanic != nil {
			cfg.OnPanic(stage, pe)
		}
	}
}
