package pipeline

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/rule"
	"repro/internal/streamx"
)

// RouteWith adapts a cluster.Router into the Classify stage: each page is
// routed to the best-matching registered repository; a page below the
// routing threshold fails with ErrUnrouted (wrapped with the near-miss
// diagnostics).
func RouteWith(r *cluster.Router) Classifier {
	return ClassifierFunc(func(p *core.Page) (string, float64, error) {
		// Learned URL patterns route without touching the page content;
		// only pattern misses and sampled verifications fingerprint — and
		// lazy pages do that straight off their token stream, no tree.
		route, ok := r.RouteLazy(p.URI, func() cluster.Features { return streamx.FingerprintPage(p) })
		if !ok {
			if route.Name != "" {
				return "", route.Score, fmt.Errorf("%w (best %q at %.2f)", ErrUnrouted, route.Name, route.Score)
			}
			return "", 0, ErrUnrouted
		}
		return route.Name, route.Score, nil
	})
}

// StaticExtractor is the CLI-side Extract stage: a fixed table of
// compiled processors keyed by repository name. Processors are frozen on
// construction, so concurrent Extract calls are safe.
type StaticExtractor map[string]*extract.Processor

// NewStaticExtractor compiles one processor per repository, keyed by the
// given names.
func NewStaticExtractor(repos map[string]*rule.Repository) (StaticExtractor, error) {
	out := make(StaticExtractor, len(repos))
	for name, repo := range repos {
		proc, err := extract.NewProcessor(repo)
		if err != nil {
			return nil, fmt.Errorf("pipeline: compiling %q: %w", name, err)
		}
		out[name] = proc.Freeze()
	}
	return out, nil
}

// Extract implements Extractor.
func (m StaticExtractor) Extract(_ context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error) {
	proc, ok := m[repo]
	if !ok {
		return nil, nil, nil, fmt.Errorf("pipeline: no repository %q", repo)
	}
	el, values, fails := proc.ExtractPageValues(p)
	return el, values, fails, nil
}
