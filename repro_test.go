package repro

import (
	"strings"
	"testing"

	"repro/internal/dom"
)

// TestFacadeEndToEnd exercises the re-exported API exactly as the package
// documentation advertises it.
func TestFacadeEndToEnd(t *testing.T) {
	sample := Sample{
		NewPage("p1", `<html><body><div><b>Price:</b> $10.00 <br></div></body></html>`),
		NewPage("p2", `<html><body><div><b>Sale!</b> today <br><b>Price:</b> $12.50 <br></div></body></html>`),
	}
	oracle := OracleFunc(func(component string, p *Page) []*dom.Node {
		label := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
			return n.Type == dom.TextNode && strings.TrimSpace(n.Data) == "Price:"
		})
		if label == nil {
			return nil
		}
		for s := label.Parent.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode && strings.TrimSpace(s.Data) != "" {
				return []*dom.Node{s}
			}
		}
		return nil
	})
	b := &Builder{Sample: sample, Oracle: oracle}
	res, err := b.BuildRule("price")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("price rule did not converge: %v", res.Actions)
	}
	repo := NewRepository("products")
	if err := repo.Record(res.Rule); err != nil {
		t.Fatal(err)
	}
	proc, err := NewProcessor(repo)
	if err != nil {
		t.Fatal(err)
	}
	doc, failures := proc.ExtractCluster([]*Page(sample))
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	xml := doc.XMLString()
	if !strings.Contains(xml, "<price>$10.00</price>") ||
		!strings.Contains(xml, "<price>$12.50</price>") {
		t.Errorf("extracted XML wrong:\n%s", xml)
	}
	xsd := GenerateSchema(repo)
	if !strings.Contains(xsd, `<xs:element name="price"`) {
		t.Errorf("schema wrong:\n%s", xsd)
	}
}
