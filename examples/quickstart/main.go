// Quickstart: the paper's running example, end to end.
//
// Builds the mapping rule for the "runtime" component over the 4-page
// imdb-movies working sample of Table 1 / Figure 4, showing the candidate
// rule's mismatches, the contextual refinement, and the final Figure 5
// XML document.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/extract"
	"repro/internal/rule"
)

// page builds one movie page in the Figure 4 layout. aka simulates the
// "Also Known As:" field that shifts later positions; filler changes the
// info row's index.
func page(uri, aka, runtime, country string, filler int) *core.Page {
	var b strings.Builder
	b.WriteString("<html><body><table>")
	for i := 0; i < filler; i++ {
		b.WriteString("<tr><td>boilerplate</td></tr>")
	}
	b.WriteString("<tr><td>")
	if aka != "" {
		b.WriteString("<b>Also Known As:</b> " + aka + " <br>")
	}
	b.WriteString("<b>Runtime:</b> " + runtime + " <br>")
	b.WriteString("<b>Country:</b> " + country + " <br>")
	b.WriteString("</td></tr></table></body></html>")
	return core.NewPage(uri, b.String())
}

func main() {
	// The working sample (§3.1): four pages of the imdb-movies cluster
	// exhibiting the cluster's structural discrepancies.
	sample := core.Sample{
		page("http://imdb.com/title/tt0095159/", "", "108 min", "USA/UK", 5),
		page("http://imdb.com/title/tt0071853/", "", "91 min", "UK", 5),
		page("http://imdb.com/title/tt0074103/",
			"The Wing and the Thigh (International: English title)", "104 min", "France", 5),
		page("http://imdb.com/title/tt0102059/", "", "84 min", "Italy", 3),
	}

	// The Oracle plays the human operator: it points at the text node
	// following the "Runtime:" label — Retrozilla's user would click that
	// value in the browser (§3.2 selection + interpretation).
	oracle := core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		label := dom.FindFirst(p.Doc, func(n *dom.Node) bool {
			return n.Type == dom.TextNode && strings.TrimSpace(n.Data) == "Runtime:"
		})
		if label == nil {
			return nil
		}
		for s := label.Parent.NextSibling; s != nil; s = s.NextSibling {
			if s.Type == dom.TextNode && strings.TrimSpace(s.Data) != "" {
				return []*dom.Node{s}
			}
		}
		return nil
	})

	builder := &core.Builder{Sample: sample, Oracle: oracle}

	// Step 1 — candidate rule (§3.2): precise position-based XPath.
	candidate, _, err := builder.Candidate("runtime")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== candidate rule ==")
	fmt.Println(candidate.String())

	// Step 2 — checking (§3.3): Table 1's tabular view.
	report, err := core.Check(candidate, sample, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== candidate check (Table 1) ==")
	fmt.Println(report.Table())

	// Step 3 — refinement loop (§3.4) until the rule is valid everywhere.
	result, err := builder.BuildRule("runtime")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== refinement actions ==")
	for _, a := range result.Actions {
		fmt.Println("  -", a)
	}
	fmt.Println("\n== refined rule ==")
	fmt.Println(result.Rule.String())
	fmt.Println("== check after refinement (Table 3) ==")
	fmt.Println(result.FinalReport().Table())

	// Step 4 — recording (§3.5) and XML extraction (§4, Figure 5).
	repo := rule.NewRepository("imdb-movies")
	if err := repo.Record(result.Rule); err != nil {
		log.Fatal(err)
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		log.Fatal(err)
	}
	doc, failures := proc.ExtractCluster([]*core.Page(sample))
	fmt.Println("== generated XML (Figure 5) ==")
	fmt.Print(doc.XMLString())
	if len(failures) > 0 {
		fmt.Println("failures:", failures)
	}
}
