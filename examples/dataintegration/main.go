// Data integration: the heterogeneous-sources use case (§1 and §7 — "the
// integration of data coming from heterogeneous Web sites").
//
// Two book stores publish the same concept with different layouts. One
// rule set is induced per source cluster (a set of mapping rules
// addresses only one page cluster — Table 4, resilience row); the
// extracted records are then merged into a single integrated document
// keyed by ISBN, with per-source prices side by side — the
// price-comparison scenario.
//
// Run with: go run ./examples/dataintegration
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/rule"
)

func main() {
	// Source A: the standard books layout. Source B: same concept,
	// different seed and different structural profile (more authors, no
	// publishers), standing in for a second store.
	profA := corpus.DefaultBookProfile(11, 25)
	profB := corpus.DefaultBookProfile(22, 25)
	profB.ProbPublisher = 0
	profB.ProbSubtitle = 0.8
	profB.MaxAuthors = 2
	storeA := corpus.GenerateBooks(profA)
	storeB := corpus.GenerateBooks(profB)

	recordsA := extractStore("store-a", storeA)
	recordsB := extractStore("store-b", storeB)

	// Integration: join on the book title (the stores assign their own
	// ISBNs, so the title is the shared key in this scenario).
	merged := map[string]*record{}
	for _, r := range recordsA {
		merged[r.title] = &record{isbn: r.isbn, title: r.title, priceA: r.price}
	}
	for _, r := range recordsB {
		if m, ok := merged[r.title]; ok {
			m.priceB = r.price
			continue
		}
		merged[r.title] = &record{isbn: r.isbn, title: r.title, priceB: r.price}
	}

	// Emit the integrated document.
	doc := extract.NewElement("book-catalog")
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	both := 0
	for _, k := range keys {
		m := merged[k]
		b := doc.Add(extract.NewElement("book"))
		b.SetAttr("isbn", m.isbn)
		t := b.Add(extract.NewElement("title"))
		t.Text = m.title
		if m.priceA != "" {
			p := b.Add(extract.NewElement("price"))
			p.SetAttr("source", "store-a")
			p.Text = m.priceA
		}
		if m.priceB != "" {
			p := b.Add(extract.NewElement("price"))
			p.SetAttr("source", "store-b")
			p.Text = m.priceB
		}
		if m.priceA != "" && m.priceB != "" {
			both++
		}
	}
	fmt.Printf("integrated %d records (%d priced by both stores)\n\n", len(merged), both)
	// Print the first few records.
	head := extract.NewElement("book-catalog")
	for i, c := range doc.Children {
		if i == 4 {
			break
		}
		head.Children = append(head.Children, c)
	}
	fmt.Print(head.XMLString())
}

type record struct {
	isbn, title, price string
	priceA, priceB     string
}

// extractStore induces rules for one store cluster and extracts flat
// records.
func extractStore(label string, cl *corpus.Cluster) []record {
	sample, _ := cl.RepresentativeSplit(8)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, []string{"book-title", "price", "isbn"}); err != nil {
		log.Fatal(err)
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		log.Fatal(err)
	}
	doc, failures := proc.ExtractCluster(cl.Pages)
	if len(failures) > 0 {
		fmt.Printf("%s: %d extraction failures\n", label, len(failures))
	}
	var out []record
	for _, page := range doc.Children {
		out = append(out, record{
			isbn:  childText(page, "isbn"),
			title: childText(page, "book-title"),
			price: childText(page, "price"),
		})
	}
	fmt.Printf("%s: extracted %d records with %d rules\n", label, len(out), len(repo.Rules))
	return out
}

func childText(page *extract.Element, name string) string {
	if el := page.Find(name); el != nil {
		return el.Text
	}
	return ""
}
