// Site migration: the Web-to-database migration use case (§1 and §7 —
// "the migration of a static Web site towards a database").
//
// The full component set of an imdb-movies style site is induced from a
// representative sample; the components are then aggregated a posteriori
// into a nested structure (§4), and the whole site is exported as an XML
// document plus the XML Schema a database loader would consume.
//
// Run with: go run ./examples/sitemigration [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/rule"
)

func main() {
	out := flag.String("out", "", "directory to write movies.xml/movies.xsd (default: print summary only)")
	flag.Parse()

	// The legacy site: 60 movie pages with all discrepancy classes.
	site := corpus.GenerateMovies(corpus.DefaultMovieProfile(1960, 60))
	sample, _ := site.RepresentativeSplit(10)

	// Semantic analysis: one mapping rule per component of interest.
	builder := &core.Builder{Sample: sample, Oracle: site.Oracle()}
	repo := rule.NewRepository(site.Name)
	results, err := builder.BuildAll(repo, site.ComponentNames())
	if err != nil {
		log.Fatal(err)
	}
	for _, comp := range site.ComponentNames() {
		res := results[comp]
		fmt.Printf("rule %-10s converged=%v refinements=%d\n", comp, res.OK, len(res.Actions))
	}

	// §3.3 notes that "the 'min' suffix will have to be removed in order
	// to get the proper data": derive the intra-node pattern from a few
	// (raw, wanted) examples and attach it to the runtime rule (the §7
	// regular-expression extension).
	if r, ok := repo.Lookup("runtime"); ok {
		if pat, ok := rule.DerivePattern([][2]string{
			{"108 min", "108"}, {"91 min", "91"}, {"84 min", "84"},
		}); ok {
			r.Refine = &rule.Refinement{Pattern: pat}
			fmt.Printf("\nderived runtime pattern: %s\n", pat)
		}
	}

	// A-posteriori aggregation into the database-ready shape (§4): the
	// flat component list becomes a nested record.
	err = repo.SetStructure([]rule.StructureNode{
		{Name: "title", Component: "title"},
		{Name: "production", Children: []rule.StructureNode{
			{Name: "runtime", Component: "runtime"},
			{Name: "country", Component: "country"},
			{Name: "language", Component: "language"},
			{Name: "director", Component: "director"},
		}},
		{Name: "classification", Children: []rule.StructureNode{
			{Name: "genre", Component: "genre"},
			{Name: "rating", Component: "rating"},
		}},
		{Name: "cast", Children: []rule.StructureNode{
			{Name: "actor", Component: "actor"},
		}},
		{Name: "extras", Children: []rule.StructureNode{
			{Name: "trivia", Component: "trivia"},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Extraction: the whole site to one XML document + schema.
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		log.Fatal(err)
	}
	doc, failures := proc.ExtractCluster(site.Pages)
	xsd := extract.GenerateSchema(repo)
	violations := extract.ValidateAgainstRepo(doc, repo)

	fmt.Printf("\nmigrated %d pages; %d extraction failures; %d schema violations\n",
		len(doc.Children), len(failures), len(violations))
	fmt.Println("\n== first migrated record ==")
	first := extract.NewElement(repo.Cluster)
	first.Add(doc.Children[0])
	fmt.Print(first.XMLString())

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		xmlPath := filepath.Join(*out, "movies.xml")
		if err := os.WriteFile(xmlPath, []byte(doc.XMLString()), 0o644); err != nil {
			log.Fatal(err)
		}
		xsdPath := filepath.Join(*out, "movies.xsd")
		if err := os.WriteFile(xsdPath, []byte(xsd), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s and %s\n", xmlPath, xsdPath)
	}
}
