// Full pipeline: Figure 1 end to end, over live HTTP.
//
// A synthetic multi-cluster site is served on a local port; the crawler
// gathers its pages; the clusterer partitions them into page clusters;
// mapping rules are induced for the movie cluster from a working sample;
// and the extraction processor emits the XML document — the complete
// (1) clustering → (2) semantic analysis → (3) extraction chain of the
// paper, with nothing precomputed.
//
// Run with: go run ./examples/fullpipeline
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/extract"
	"repro/internal/rule"
	"repro/internal/webfetch"
)

func main() {
	// The "Web site": three clusters behind one HTTP server.
	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(7, 15))
	books := corpus.GenerateBooks(corpus.DefaultBookProfile(8, 15))
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(9, 15))
	handler, err := webfetch.NewSiteHandler(movies, books, stocks)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d pages at %s\n", handler.PageCount(), base)

	// Step 0 — gather the pages.
	fetcher := &webfetch.Fetcher{}
	crawled, err := fetcher.Crawl(base + "/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d pages\n", len(crawled))

	// Step 1 — page clusters.
	infos := make([]cluster.PageInfo, len(crawled))
	for i, p := range crawled {
		infos[i] = cluster.PageInfo{URI: p.URI, Doc: p.Doc}
	}
	results := cluster.ClusterPages(infos, cluster.DefaultConfig())
	fmt.Printf("clustered into %d page clusters:\n", len(results))
	var moviePages []*core.Page
	for _, r := range results {
		fmt.Printf("  %-30s %d pages\n", r.Name, len(r.Pages))
		for _, idx := range r.Pages {
			if strings.Contains(crawled[idx].URI, "/title/") {
				moviePages = append(moviePages, crawled[idx])
			}
		}
	}

	// Step 2 — semantic analysis on the movie cluster. The operator's
	// selections come from the generator's ground truth, transferred into
	// the crawled trees via their precise paths.
	byPath := map[string]*core.Page{}
	for _, p := range movies.Pages {
		u, _ := url.Parse(p.URI)
		byPath[u.Path] = p
	}
	oracle := core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		u, err := url.Parse(p.URI)
		if err != nil {
			return nil
		}
		orig := byPath[u.Path]
		if orig == nil {
			return nil
		}
		var out []*dom.Node
		for _, n := range movies.Truth(orig, component) {
			path, ok := core.PathTo(n)
			if !ok {
				continue
			}
			c, err := path.Compile()
			if err != nil {
				continue
			}
			if m := c.SelectLocation(p.Doc); len(m) > 0 {
				out = append(out, m[0])
			}
		}
		return out
	})
	sampleSize := 10
	if len(moviePages) < sampleSize {
		sampleSize = len(moviePages)
	}
	b := &core.Builder{Sample: core.Sample(moviePages[:sampleSize]), Oracle: oracle}
	repo := rule.NewRepository("imdb-movies")
	for _, comp := range []string{"title", "runtime", "country", "director", "rating"} {
		res, err := b.BuildRule(comp)
		if err != nil {
			log.Fatal(err)
		}
		status := "recorded"
		if res.OK {
			if err := repo.Record(res.Rule); err != nil {
				log.Fatal(err)
			}
		} else {
			status = "NOT CONVERGED"
		}
		fmt.Printf("rule %-10s %d refinement(s) -> %s\n", comp, len(res.Actions), status)
	}

	// Step 3 — extraction of the whole crawled cluster.
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		log.Fatal(err)
	}
	doc, failures := proc.ExtractCluster(moviePages)
	fmt.Printf("\nextracted %d pages (%d failures); first two records:\n\n",
		len(doc.Children), len(failures))
	head := extract.NewElement(repo.Cluster)
	for i, c := range doc.Children {
		if i == 2 {
			break
		}
		head.Children = append(head.Children, c)
	}
	fmt.Print(head.XMLString())
}
