package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPricemonitorExample runs the full monitoring campaign and pins the
// narrative to its deterministic output (seeded corpus, fake clock, zero
// jitter), so the example cannot silently rot as the scheduler evolves.
// It is fast — every recrawl interval elapses on the fake clock — so it
// runs under -short too.
func TestPricemonitorExample(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()

	if !strings.Contains(out, "induced 4 rules for cluster stocks") {
		t.Errorf("missing induction line in output:\n%s", out)
	}
	if got := strings.Count(out, "\n  new "); got != 12 {
		t.Errorf("baseline crawl emitted %d new records, want 12\n%s", got, out)
	}
	for _, want := range []string{
		"== baseline crawl ==",
		"outcome=clean driftRate=0.000 next recrawl in 2m0s",
		"== stable fetch: interval decays ==",
		"outcome=clean driftRate=0.000 next recrawl in 4m0s",
		"== site redesign: drift alarm and self-repair ==",
		"outcome=repaired driftRate=1.000 next recrawl in 1m0s",
		"== two prices moved ==",
		"changed  /q/ACME/6  last=131.07",
		"changed  /q/DOMC/5  last=17.45",
		"outcome=clean driftRate=0.583 next recrawl in 1m25s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The redesign recrawl repairs in place: the quote values are
	// unchanged, so the feed must stay silent through the repair.
	repair := section(out, "== site redesign")
	if !strings.Contains(repair, "(no changes)") {
		t.Errorf("repair phase should emit no feed records:\n%s", repair)
	}
	// After the repair the price phase reports exactly the two moves.
	if got := strings.Count(section(out, "== two prices moved"), "changed"); got != 2 {
		t.Errorf("price phase emitted %d changed records, want 2\n%s", got, out)
	}
}

// section returns the output from the given phase header to the next one.
func section(out, header string) string {
	i := strings.Index(out, header)
	if i < 0 {
		return ""
	}
	rest := out[i+len(header):]
	if j := strings.Index(rest, "\n== "); j >= 0 {
		rest = rest[:j]
	}
	return rest
}
