// Price monitoring: the information-monitoring use case the paper's
// conclusion names ("the monitoring of Web data such as concurrent prices
// or stock rankings").
//
// Mapping rules are induced once from a sample of stock-quote pages; the
// recorded repository is then applied to successive "fetches" of the same
// pages to track price changes. A final fetch simulates a site redesign
// that drops the Volume field — the extraction processor detects the
// failure (§7) instead of silently emitting wrong data.
//
// Run with: go run ./examples/pricemonitor
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/rule"
)

func main() {
	// One-time setup: induce rules from a 8-page working sample.
	cl := corpus.GenerateStocks(corpus.DefaultStockProfile(2024, 24))
	sample, _ := cl.RepresentativeSplit(8)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("induced %d rules for cluster %s\n\n", len(repo.Rules), repo.Cluster)
	for _, r := range repo.Rules {
		fmt.Printf("  %-10s -> %s\n", r.Name, r.Locations[0])
	}

	proc, err := extract.NewProcessor(repo)
	if err != nil {
		log.Fatal(err)
	}

	// Daily monitoring: each "fetch" is a fresh generation of the same
	// cluster (prices move, the optional news block comes and goes — the
	// rules must keep locating the quote fields).
	fmt.Println("\n== monitoring: three fetches ==")
	for day := 1; day <= 3; day++ {
		fetch := corpus.GenerateStocks(corpus.DefaultStockProfile(int64(3000+day), 4))
		doc, failures := proc.ExtractCluster(fetch.Pages)
		fmt.Printf("day %d:\n", day)
		for _, page := range doc.Children {
			ticker, price, change := text(page, "ticker"), text(page, "last-price"), text(page, "change")
			fmt.Printf("  %-6s last=%-8s change=%s\n", ticker, price, change)
		}
		if len(failures) > 0 {
			fmt.Println("  failures:", failures)
		}
	}

	// A site redesign drops the Volume field: monitoring must notice.
	fmt.Println("\n== drifted fetch (Volume field removed) ==")
	drifted, injected := corpus.InjectDrift(cl, "volume", corpus.DriftRemoveMandatory, 1.0, 7)
	_, failures := proc.ExtractCluster(drifted[:4])
	fmt.Printf("injected %d drifts; extraction reported %d failure(s):\n",
		len(injected), len(failures))
	for _, f := range failures {
		fmt.Println("  ", f)
	}
}

func text(page *extract.Element, comp string) string {
	if el := page.Find(comp); el != nil {
		return el.Text
	}
	return "-"
}
