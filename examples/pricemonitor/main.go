// Price monitoring: the information-monitoring use case the paper's
// conclusion names ("the monitoring of Web data such as concurrent prices
// or stock rankings") — run on the continuous-monitoring stack.
//
// Mapping rules are induced once from a sample of stock-quote pages, the
// pages are served as a live site, and the drift-adaptive recrawl
// scheduler (internal/monitor) watches it: stable fetches decay the
// recrawl interval toward the ceiling, a site redesign trips the drift
// alarm mid-recrawl — the repair path re-induces the broken rule and the
// schedule snaps back to the minimum interval — and monitoring then
// carries on, reporting price movements on the change feed. The whole
// campaign runs on a fake clock: no wall-clock sleeps.
//
// Run with: go run ./examples/pricemonitor
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/lifecycle"
	"repro/internal/monitor"
	"repro/internal/resilient"
	"repro/internal/rule"
	"repro/internal/service"
	"repro/internal/webfetch"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// One-time setup: induce rules from a representative sample and
	// attach the cluster signature so crawled pages route themselves.
	cl := corpus.GenerateStocks(corpus.DefaultStockProfile(2024, 12))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		return err
	}
	sig := cluster.NewSignature()
	for _, p := range cl.Pages {
		sig.Add(cluster.Fingerprint(cluster.PageInfo{URI: p.URI, Doc: p.Doc}))
	}
	repo.Signature = sig
	fmt.Fprintf(w, "induced %d rules for cluster %s\n", len(repo.Rules), repo.Cluster)

	// The quote pages as a live Web site.
	site, err := webfetch.NewSiteHandler(cl)
	if err != nil {
		return err
	}
	siteSrv := httptest.NewServer(site)
	defer siteSrv.Close()

	// The extraction service with the recrawl scheduler on a fake clock.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := service.NewServer(4, 16, &webfetch.Fetcher{MaxPages: 50})
	defer srv.Close()
	srv.Log = quiet
	srv.AutoRepair = false // repair runs synchronously inside the recrawl pass
	srv.Lifecycle = lifecycle.Config{
		WindowSize: 12, MinSamples: 6, TripRatio: 0.5,
		BufferSize: 64, RepairSample: 10, Logger: quiet,
	}
	if _, err := srv.LoadRepo(cl.Name, repo); err != nil {
		return err
	}
	clock := resilient.NewFakeClock(time.Unix(1700000000, 0).UTC())
	sched := srv.EnableMonitor(monitor.Config{
		MinInterval: time.Minute,
		MaxInterval: 8 * time.Minute,
		Budget:      1,
		JitterFrac:  0,
		Rand:        func() float64 { return 0 },
		Clock:       clock,
		Log:         quiet,
	})
	if _, err := sched.Register(cl.Name, siteSrv.URL+"/", time.Minute); err != nil {
		return err
	}

	ctx := context.Background()
	var cursor uint64
	recrawl := func(label string, advance time.Duration) {
		clock.Advance(advance)
		sched.Tick(ctx)
		fmt.Fprintf(w, "\n== %s ==\n", label)
		events := sched.Feed().Since(cursor)
		for _, ev := range events {
			cursor = ev.Seq
			line := fmt.Sprintf("  %-8s %s", ev.Kind, pathOf(ev.URI))
			if last := ev.Record["last-price"]; len(last) > 0 {
				line += "  last=" + last[0]
			}
			fmt.Fprintln(w, line)
		}
		if len(events) == 0 {
			fmt.Fprintln(w, "  (no changes)")
		}
		st, _ := sched.Get(cl.Name)
		fmt.Fprintf(w, "  outcome=%s driftRate=%.3f next recrawl in %s\n",
			st.LastOutcome, st.DriftRate, st.Interval.Round(time.Second))
	}

	// Baseline: every quote page enters the feed as "new"; a quiet
	// follow-up fetch decays the recrawl interval toward the ceiling.
	recrawl("baseline crawl", 0)
	recrawl("stable fetch: interval decays", 2*time.Minute)

	// A site redesign inserts a summary table above the quote table: the
	// induced rules are positional, so every quote field now resolves to
	// the wrong table and comes back empty — a detectable failure (§7:
	// mandatory component not found), not silent wrong data. The drift
	// alarm trips mid-recrawl, the repair path re-induces against the
	// remembered golden values (still on the page, one table further
	// down), and the schedule snaps back to the minimum interval — the
	// monitoring loop heals itself. The quote values themselves are
	// unchanged, so the feed stays silent.
	const summary = `<TABLE class="summary"><TR><TD>Market summary: trading normal</TD></TR></TABLE>`
	var redesigned []*core.Page
	for _, p := range cl.Pages {
		src := strings.Replace(dom.Render(p.Doc),
			`<TABLE class="quote">`, summary+`<TABLE class="quote">`, 1)
		redesigned = append(redesigned, core.NewPage(p.URI, src))
	}
	if err := site.SetPages(redesigned); err != nil {
		return err
	}
	st, _ := sched.Get(cl.Name)
	recrawl("site redesign: drift alarm and self-repair", st.Interval)

	// Monitoring carries on after the repair: two quotes tick, and the
	// feed reports exactly those pages as changed.
	sortedOrig := append([]*core.Page(nil), cl.Pages...)
	sort.Slice(sortedOrig, func(i, j int) bool { return sortedOrig[i].URI < sortedOrig[j].URI })
	byURI := map[string]*core.Page{}
	for _, p := range redesigned {
		byURI[p.URI] = p
	}
	var moved []*core.Page
	for i, next := range []string{"131.07", "17.45"} {
		orig := sortedOrig[i]
		old := cl.TruthStrings(orig, "last-price")[0]
		src := dom.Render(byURI[orig.URI].Doc)
		moved = append(moved, core.NewPage(orig.URI,
			strings.Replace(src, ">"+old+"<", ">"+next+"<", 1)))
	}
	if err := site.SetPages(moved); err != nil {
		return err
	}
	st, _ = sched.Get(cl.Name)
	recrawl("two prices moved", st.Interval)
	return nil
}

func pathOf(uri string) string {
	if u, err := url.Parse(uri); err == nil && u.Path != "" {
		return u.Path
	}
	return uri
}
