package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/pipeline"
	"repro/internal/rule"
)

// siteScore accumulates routing outcomes for one evaluated site
// directory.
type siteScore struct {
	dir      string
	truth    string // manifest cluster name = expected repository
	pages    int
	correct  int
	unrouted int
	confused map[string]int // wrong repo → count
	failures int
}

// runPipelineEval routes and extracts every given site directory through
// the ingestion pipeline and reports routing accuracy against the
// manifests' cluster names.
func runPipelineEval(sites, ruleSpecs []string, threshold float64) error {
	router := cluster.NewRouter(threshold)
	repos := map[string]*rule.Repository{}
	for _, spec := range ruleSpecs {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		var repo *rule.Repository
		var err error
		if strings.HasSuffix(path, ".xml") {
			repo, err = rule.LoadXML(path)
		} else {
			repo, err = rule.Load(path)
		}
		if err != nil {
			return err
		}
		if name == "" {
			name = repo.Cluster
		}
		repos[name] = repo
		if repo.Signature == nil {
			fmt.Printf("note: repository %q has no signature (rebuild with retrozilla); it cannot win routes\n", name)
			continue
		}
		router.Register(name, repo.Signature)
	}
	ex, err := pipeline.NewStaticExtractor(repos)
	if err != nil {
		return err
	}

	var scores []*siteScore
	for _, dir := range sites {
		src, err := pipeline.NewManifestSource(dir, nil)
		if err != nil {
			return err
		}
		score := &siteScore{dir: dir, truth: src.Manifest().Cluster, confused: map[string]int{}}
		sink := pipeline.FuncSink(func(it *pipeline.Item) error {
			score.pages++
			score.failures += len(it.Failures)
			switch {
			case errors.Is(it.Err, pipeline.ErrUnrouted):
				score.unrouted++
			case it.Err != nil:
				score.confused["error"]++
			case it.Repo == score.truth:
				score.correct++
			default:
				score.confused[it.Repo]++
			}
			return nil
		})
		if _, err := pipeline.Run(context.Background(), pipeline.Config{
			Classifier: pipeline.RouteWith(router),
			Extractor:  routedOnly{ex},
		}, src, sink); err != nil {
			return err
		}
		scores = append(scores, score)
	}

	fmt.Println("=== PIPE — site-ingestion routing evaluation ===")
	fmt.Printf("%-28s %-16s %6s %8s %9s %9s %9s\n",
		"site", "truth", "pages", "correct", "unrouted", "confused", "failures")
	totalPages, totalCorrect := 0, 0
	for _, s := range scores {
		confused := 0
		for _, n := range s.confused {
			confused += n
		}
		fmt.Printf("%-28s %-16s %6d %8d %9d %9d %9d\n",
			s.dir, s.truth, s.pages, s.correct, s.unrouted, confused, s.failures)
		if len(s.confused) > 0 {
			keys := make([]string, 0, len(s.confused))
			for k := range s.confused {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("    confused with %-12s %d\n", k, s.confused[k])
			}
		}
		totalPages += s.pages
		totalCorrect += s.correct
	}
	if totalPages > 0 {
		fmt.Printf("routing accuracy: %.1f%% (%d/%d)\n",
			100*float64(totalCorrect)/float64(totalPages), totalCorrect, totalPages)
	}
	return nil
}

// routedOnly skips extraction for repositories the evaluator has no
// rules for — a routed page still scores, it just produces no record.
type routedOnly struct{ ex pipeline.StaticExtractor }

// Extract implements pipeline.Extractor.
func (r routedOnly) Extract(ctx context.Context, repo string, p *core.Page) (*extract.Element, map[string][]string, []extract.Failure, error) {
	if _, ok := r.ex[repo]; !ok {
		return nil, nil, nil, nil
	}
	return r.ex.Extract(ctx, repo, p)
}
