// Command evaluate regenerates the paper's tables and figures and the
// quantitative studies derived from its claims. With no flags it runs
// everything; -exp selects one experiment by ID.
//
// With -site/-rules flags it instead evaluates the online ingestion
// pipeline: the named site directories stream through signature routing
// and extraction, and the report scores routing accuracy against each
// directory's manifest cluster (the ground truth) plus extraction
// failures per repository.
//
// Usage:
//
//	evaluate              # run all experiments
//	evaluate -exp T1      # run one (F1 T1 T2 T3 F3 F5 XSD T4 CONV BASE NEST FAIL)
//	evaluate -list        # list experiment IDs
//	evaluate -site ./site/imdb-movies -site ./site/books \
//	         -rules imdb-movies=movies.json -rules books=books.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs")
	var sites, rules repeatable
	flag.Var(&sites, "site", "pages directory to route+extract (repeatable; enables pipeline evaluation)")
	flag.Var(&rules, "rules", "repository to load ([name=]path.json|path.xml); repeatable")
	threshold := flag.Float64("threshold", 0, "routing threshold (0 = default)")
	flag.Parse()

	if len(sites) > 0 || len(rules) > 0 {
		if len(sites) == 0 || len(rules) == 0 {
			fmt.Fprintln(os.Stderr, "evaluate: pipeline evaluation needs both -site and -rules")
			os.Exit(2)
		}
		if err := runPipelineEval(sites, rules, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	if *exp != "" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
				*exp, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		printReport(r)
		return
	}
	for _, r := range experiments.All() {
		printReport(r)
	}
}

func printReport(r experiments.Report) {
	fmt.Printf("=== %s — %s ===\n", r.ID, r.Title)
	fmt.Println(r.Text)
	fmt.Println()
}
