// Command evaluate regenerates the paper's tables and figures and the
// quantitative studies derived from its claims. With no flags it runs
// everything; -exp selects one experiment by ID.
//
// Usage:
//
//	evaluate              # run all experiments
//	evaluate -exp T1      # run one (F1 T1 T2 T3 F3 F5 XSD T4 CONV BASE NEST FAIL)
//	evaluate -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	if *exp != "" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
				*exp, strings.Join(experiments.IDs(), " "))
			os.Exit(2)
		}
		printReport(r)
		return
	}
	for _, r := range experiments.All() {
		printReport(r)
	}
}

func printReport(r experiments.Report) {
	fmt.Printf("=== %s — %s ===\n", r.ID, r.Title)
	fmt.Println(r.Text)
	fmt.Println()
}
