// Command extract applies a recorded rule repository to the pages of a
// cluster and writes the extraction output: the XML document (Figure 5
// structure, or the repository's enhanced structure) and the generated
// XML Schema. Detected extraction failures (§7) are reported on stderr.
//
// Usage:
//
//	extract -rules rules.json -site ./site/imdb-movies -out data.xml -xsd schema.xsd
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/rule"
)

func main() {
	rulesPath := flag.String("rules", "rules.json", "rule repository (from retrozilla)")
	site := flag.String("site", "", "cluster directory (from sitegen)")
	out := flag.String("out", "data.xml", "output XML document")
	xsd := flag.String("xsd", "", "output XML Schema (optional)")
	flag.Parse()
	if *site == "" {
		fmt.Fprintln(os.Stderr, "extract: -site is required")
		os.Exit(2)
	}
	if err := run(*rulesPath, *site, *out, *xsd); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(rulesPath, site, out, xsd string) error {
	var repo *rule.Repository
	var err error
	if strings.HasSuffix(rulesPath, ".xml") {
		repo, err = rule.LoadXML(rulesPath)
	} else {
		repo, err = rule.Load(rulesPath)
	}
	if err != nil {
		return err
	}
	pages, err := loadPages(site)
	if err != nil {
		return err
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		return err
	}
	doc, failures := proc.ExtractCluster(pages)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := doc.WriteXML(f); err != nil {
		return err
	}
	fmt.Printf("extracted %d page(s) -> %s\n", len(doc.Children), out)
	if xsd != "" {
		if err := os.WriteFile(xsd, []byte(extract.GenerateSchema(repo)), 0o644); err != nil {
			return err
		}
		fmt.Printf("schema -> %s\n", xsd)
	}
	for _, fail := range failures {
		fmt.Fprintln(os.Stderr, "failure:", fail)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "%d extraction failure(s) detected\n", len(failures))
	}
	return nil
}

func loadPages(site string) ([]*core.Page, error) {
	data, err := os.ReadFile(filepath.Join(site, "pages.json"))
	if err != nil {
		return nil, err
	}
	var man struct {
		Pages map[string]string `json:"pages"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, err
	}
	uris := make([]string, 0, len(man.Pages))
	for uri := range man.Pages {
		uris = append(uris, uri)
	}
	sort.Slice(uris, func(i, j int) bool { return man.Pages[uris[i]] < man.Pages[uris[j]] })
	var pages []*core.Page
	for _, uri := range uris {
		html, err := os.ReadFile(filepath.Join(site, man.Pages[uri]))
		if err != nil {
			return nil, err
		}
		pages = append(pages, core.NewPage(uri, string(html)))
	}
	return pages, nil
}
