// Command extract applies a recorded rule repository to a stream of
// pages and writes the extraction output — one pipeline run over the
// directory-manifest (or NDJSON stdin) source and the aggregated-XML,
// file-per-page-XML or NDJSON sink. The default shape is the paper's:
// cluster directory in, one XML document (Figure 5 structure, or the
// repository's enhanced structure) out, plus the generated XML Schema.
// Detected extraction failures (§7) are reported on stderr.
//
// Usage:
//
//	extract -rules rules.json -site ./site/imdb-movies -out data.xml -xsd schema.xsd
//	extract -rules rules.json -site ./site/imdb-movies -split ./xml-pages
//	crawl -url http://host/ -ndjson | extract -rules rules.json -site - -format ndjson -out -
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/extract"
	"repro/internal/pipeline"
	"repro/internal/rule"
)

func main() {
	rulesPath := flag.String("rules", "rules.json", "rule repository (from retrozilla)")
	site := flag.String("site", "", `cluster directory (from sitegen or crawl), or "-" for NDJSON pages on stdin`)
	out := flag.String("out", "data.xml", `output document ("-" for stdout)`)
	xsd := flag.String("xsd", "", "output XML Schema (optional)")
	format := flag.String("format", "xml", "output format: xml (aggregated document) or ndjson (one record per line)")
	split := flag.String("split", "", "also write one XML document per page into this directory")
	flag.Parse()
	if *site == "" {
		fmt.Fprintln(os.Stderr, "extract: -site is required")
		os.Exit(2)
	}
	if err := run(*rulesPath, *site, *out, *xsd, *format, *split); err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
}

func run(rulesPath, site, out, xsd, format, split string) error {
	var repo *rule.Repository
	var err error
	if strings.HasSuffix(rulesPath, ".xml") {
		repo, err = rule.LoadXML(rulesPath)
	} else {
		repo, err = rule.Load(rulesPath)
	}
	if err != nil {
		return err
	}
	ex, err := pipeline.NewStaticExtractor(map[string]*rule.Repository{repo.Cluster: repo})
	if err != nil {
		return err
	}

	var src pipeline.Source
	if site == "-" {
		src = pipeline.NewNDJSONSource(os.Stdin, 0, nil)
	} else {
		if src, err = pipeline.NewManifestSource(site, nil); err != nil {
			return err
		}
	}

	if format != "xml" && format != "ndjson" {
		return fmt.Errorf("unknown -format %q (want xml or ndjson)", format)
	}
	var sinks pipeline.MultiSink
	if split != "" {
		dirSink, err := pipeline.NewXMLDirSink(split)
		if err != nil {
			return err
		}
		sinks = append(sinks, dirSink)
	}
	// The output file is opened last, after every argument has been
	// validated — a bad flag must not truncate an existing output.
	outW, closeOut, err := openOut(out)
	if err != nil {
		return err
	}
	if format == "xml" {
		sinks = append(sinks, pipeline.NewAggregateXML(outW, repo.Cluster, false))
	} else {
		sinks = append(sinks, pipeline.NewNDJSONSink(outW))
	}
	// Failures stream to stderr as they surface, like the old batch
	// driver's end-of-run report but without buffering the run.
	var failures int
	sinks = append(sinks, pipeline.FuncSink(func(it *pipeline.Item) error {
		if it.Err != nil {
			failures++
			fmt.Fprintln(os.Stderr, "failure:", it.Err)
			return nil
		}
		for _, f := range it.Failures {
			failures++
			fmt.Fprintln(os.Stderr, "failure:", f)
		}
		return nil
	}))

	stats, err := pipeline.Run(context.Background(), pipeline.Config{
		Classifier: pipeline.FixedRepo(repo.Cluster),
		Extractor:  ex,
	}, src, sinks)
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("extracted %d page(s) -> %s\n", stats.Extracted, out)
	if xsd != "" {
		if err := os.WriteFile(xsd, []byte(extract.GenerateSchema(repo)), 0o644); err != nil {
			return err
		}
		fmt.Printf("schema -> %s\n", xsd)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d extraction failure(s) detected\n", failures)
	}
	return nil
}

// openOut opens the output destination ("-" is stdout, which stays open).
func openOut(out string) (io.Writer, func() error, error) {
	if out == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
