package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/rule"
)

func writeSiteAndRules(t *testing.T, dir string) (site, rules string) {
	t.Helper()
	cl := corpus.GenerateStocks(corpus.DefaultStockProfile(9, 6))
	site = filepath.Join(dir, "stocks")
	if err := os.MkdirAll(site, 0o755); err != nil {
		t.Fatal(err)
	}
	man := struct {
		Cluster string            `json:"cluster"`
		Pages   map[string]string `json:"pages"`
	}{Cluster: cl.Name, Pages: map[string]string{}}
	for i, p := range cl.Pages {
		file := fmt.Sprintf("page%03d.html", i)
		if err := os.WriteFile(filepath.Join(site, file),
			[]byte(dom.Render(p.Doc)), 0o644); err != nil {
			t.Fatal(err)
		}
		man.Pages[p.URI] = file
	}
	data, _ := json.MarshalIndent(man, "", "  ")
	if err := os.WriteFile(filepath.Join(site, "pages.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	repo := rule.NewRepository("stocks")
	if err := repo.Record(rule.Rule{
		Name: "ticker", Optionality: rule.Mandatory, Multiplicity: rule.SingleValued,
		Format: rule.Text, Locations: []string{"BODY//H2[1]/text()[1]"},
	}); err != nil {
		t.Fatal(err)
	}
	rules = filepath.Join(dir, "rules.json")
	if err := repo.Save(rules); err != nil {
		t.Fatal(err)
	}
	return site, rules
}

func TestExtractRunWritesXMLAndXSD(t *testing.T) {
	dir := t.TempDir()
	site, rules := writeSiteAndRules(t, dir)
	out := filepath.Join(dir, "data.xml")
	xsd := filepath.Join(dir, "schema.xsd")
	if err := run(rules, site, out, xsd, "xml", ""); err != nil {
		t.Fatal(err)
	}
	xml, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xml), "<stocks>") ||
		!strings.Contains(string(xml), "<ticker>") {
		t.Errorf("XML output wrong:\n%s", xml)
	}
	schema, err := os.ReadFile(xsd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(schema), `<xs:element name="ticker"`) {
		t.Errorf("XSD output wrong:\n%s", schema)
	}
}

func TestExtractRunMissingInputs(t *testing.T) {
	dir := t.TempDir()
	site, rules := writeSiteAndRules(t, dir)
	if err := run(filepath.Join(dir, "nope.json"), site, filepath.Join(dir, "o.xml"), "", "xml", ""); err == nil {
		t.Error("missing rules must fail")
	}
	if err := run(rules, filepath.Join(dir, "nosite"), filepath.Join(dir, "o.xml"), "", "xml", ""); err == nil {
		t.Error("missing site must fail")
	}
	if err := run(rules, site, filepath.Join(dir, "o.xml"), "", "csv", ""); err == nil {
		t.Error("unknown format must fail")
	}
}

// TestExtractRunSplitPerPage: -split writes one XML document per page
// alongside the aggregate.
func TestExtractRunSplitPerPage(t *testing.T) {
	dir := t.TempDir()
	site, rules := writeSiteAndRules(t, dir)
	split := filepath.Join(dir, "pages-xml")
	if err := run(rules, site, filepath.Join(dir, "data.xml"), "", "xml", split); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("split dir has %d files, want 6", len(entries))
	}
	one, err := os.ReadFile(filepath.Join(split, "page000.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(one), "<ticker>") {
		t.Errorf("per-page XML wrong:\n%s", one)
	}
}

// TestExtractRunNDJSONFormat: -format ndjson emits one record line per
// page.
func TestExtractRunNDJSONFormat(t *testing.T) {
	dir := t.TempDir()
	site, rules := writeSiteAndRules(t, dir)
	out := filepath.Join(dir, "data.ndjson")
	if err := run(rules, site, out, "", "ndjson", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d NDJSON lines, want 6", len(lines))
	}
	for _, l := range lines {
		var res struct {
			URI    string `json:"uri"`
			Repo   string `json:"repo"`
			Record any    `json:"record"`
		}
		if err := json.Unmarshal([]byte(l), &res); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		if res.Repo != "stocks" || res.Record == nil {
			t.Errorf("line = %q", l)
		}
	}
}
