// Command sitegen writes a synthetic web-site corpus to disk: one
// directory per cluster containing the HTML pages, a pages.json manifest
// (URI → file) and a truth.json ground-truth file with the expected
// component values per page.
//
// Usage:
//
//	sitegen -out ./site -cluster movies -pages 50 -seed 42
//	sitegen -out ./site -cluster all   -pages 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/dom"
)

func main() {
	out := flag.String("out", "site", "output directory")
	clusterName := flag.String("cluster", "all", "movies | books | stocks | forum | all")
	pages := flag.Int("pages", 30, "pages per cluster")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	var clusters []*corpus.Cluster
	switch *clusterName {
	case "movies":
		clusters = append(clusters, corpus.GenerateMovies(corpus.DefaultMovieProfile(*seed, *pages)))
	case "books":
		clusters = append(clusters, corpus.GenerateBooks(corpus.DefaultBookProfile(*seed, *pages)))
	case "stocks":
		clusters = append(clusters, corpus.GenerateStocks(corpus.DefaultStockProfile(*seed, *pages)))
	case "forum":
		clusters = append(clusters, corpus.GenerateForum(corpus.DefaultForumProfile(*seed, *pages)))
	case "all":
		clusters = append(clusters,
			corpus.GenerateMovies(corpus.DefaultMovieProfile(*seed, *pages)),
			corpus.GenerateBooks(corpus.DefaultBookProfile(*seed+1, *pages)),
			corpus.GenerateStocks(corpus.DefaultStockProfile(*seed+2, *pages)),
			corpus.GenerateForum(corpus.DefaultForumProfile(*seed+3, *pages)))
	default:
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}

	for _, cl := range clusters {
		if err := writeCluster(*out, cl); err != nil {
			fmt.Fprintln(os.Stderr, "sitegen:", err)
			os.Exit(1)
		}
	}
}

// manifest maps page URIs to their HTML files.
type manifest struct {
	Cluster    string            `json:"cluster"`
	Components []string          `json:"components"`
	Pages      map[string]string `json:"pages"`
}

func writeCluster(root string, cl *corpus.Cluster) error {
	dir := filepath.Join(root, cl.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := manifest{
		Cluster:    cl.Name,
		Components: cl.ComponentNames(),
		Pages:      map[string]string{},
	}
	truth := map[string]map[string][]string{}
	for i, p := range cl.Pages {
		file := fmt.Sprintf("page%03d.html", i)
		if err := os.WriteFile(filepath.Join(dir, file),
			[]byte(dom.Render(p.Doc)), 0o644); err != nil {
			return err
		}
		man.Pages[p.URI] = file
		tv := map[string][]string{}
		for _, comp := range cl.ComponentNames() {
			if vals := cl.TruthStrings(p, comp); len(vals) > 0 {
				tv[comp] = vals
			}
		}
		truth[p.URI] = tv
	}
	if err := writeJSON(filepath.Join(dir, "pages.json"), man); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "truth.json"), truth); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d pages, %d components\n", dir, len(cl.Pages), len(cl.Components))
	return nil
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
