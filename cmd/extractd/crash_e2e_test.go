package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/rule"
	"repro/internal/webfetch"
)

// Crash-recovery acceptance test for the durability layer: the real
// binary is driven to a rich state (active repository, captured
// unrouted traffic, a staged induction job), killed with SIGKILL —
// no shutdown path, no final snapshot — and restarted over the same
// data directory. Every piece of state the daemon reports over HTTP
// must come back identical, and the staged job must still promote and
// serve.

// daemon is one running extractd child process.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the built binary against dataDir and waits for
// the extractd.listening log line to learn the bound address. Extra
// flags are appended to the standard crash-test set.
func startDaemon(t *testing.T, bin, dataDir string, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-induct",
		"-log-format", "json", "-log-level", "info",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "extractd.listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, base: "http://" + addr}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never logged extractd.listening")
		return nil
	}
}

// kill SIGKILLs the daemon — the crash under test, not a shutdown.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func (d *daemon) getJSON(t *testing.T, path string, v any) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, raw)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("GET %s: %v: %s", path, err, raw)
		}
	}
}

func (d *daemon) postJSON(t *testing.T, path string, body, out any) {
	t.Helper()
	d.postJSONStatus(t, path, body, out, http.StatusOK)
}

func (d *daemon) postJSONStatus(t *testing.T, path string, body, out any, want int) {
	t.Helper()
	var rd io.Reader = strings.NewReader("")
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	resp, err := http.Post(d.base+path, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: %v: %s", path, err, raw)
		}
	}
}

// getBody fetches a path and returns the raw response body.
func (d *daemon) getBody(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, raw)
	}
	return string(raw)
}

// buildSignedRepo induces rules for a cluster and attaches its routing
// signature, the way the offline CLI records repositories.
func buildSignedRepo(t *testing.T, cl *corpus.Cluster) *rule.Repository {
	t.Helper()
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		t.Fatal(err)
	}
	sig := cluster.NewSignature()
	for _, p := range cl.Pages {
		sig.Add(cluster.Fingerprint(cluster.PageInfo{URI: p.URI, Doc: p.Doc}))
	}
	repo.Signature = sig
	return repo
}

func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real binary; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "extractd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building extractd: %v", err)
	}
	dataDir := filepath.Join(tmp, "data")

	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(61, 10))
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(62, 16))

	// ---- Process 1: build up state, then die mid-flight. ----
	d1 := startDaemon(t, bin, dataDir)

	var loaded struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
	}
	d1.postJSON(t, "/repos?name="+movies.Name, buildSignedRepo(t, movies), &loaded)
	if loaded.Version != 1 {
		t.Fatalf("loaded version %d, want 1", loaded.Version)
	}
	// A second load mints v2 (active) with v1 retained — the restart
	// must reproduce the whole version history, not just the tip.
	d1.postJSON(t, "/repos?name="+movies.Name, buildSignedRepo(t, movies), &loaded)
	if loaded.Version != 2 {
		t.Fatalf("reloaded version %d, want 2", loaded.Version)
	}

	// Unrouted traffic: every stock page is captured for induction.
	for _, p := range stocks.Pages {
		resp, err := http.Post(d1.base+"/extract?uri="+p.URI, "text/html",
			strings.NewReader(dom.Render(p.Doc)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("stock page %s: %d, want 422 unrouted", p.URI, resp.StatusCode)
		}
	}

	// Operator examples queue an induction job; wait for it to stage.
	sample, _ := stocks.RepresentativeSplit(10)
	examples := map[string]map[string][]string{}
	for _, p := range sample {
		vals := map[string][]string{}
		for _, comp := range stocks.ComponentNames() {
			if vs := stocks.TruthStrings(p, comp); len(vs) > 0 {
				vals[comp] = vs
			}
		}
		examples[p.URI] = vals
	}
	var induceResp struct {
		Queued []struct {
			ID string `json:"id"`
		} `json:"queued"`
	}
	d1.postJSON(t, "/induce", map[string]any{"examples": examples}, &induceResp)
	if len(induceResp.Queued) != 1 {
		t.Fatalf("queued %d jobs, want 1", len(induceResp.Queued))
	}
	jobID := induceResp.Queued[0].ID
	var inducedCluster string
	deadline := time.Now().Add(30 * time.Second)
	for {
		var job struct {
			State   string `json:"state"`
			Error   string `json:"error"`
			Cluster string `json:"cluster"`
		}
		d1.getJSON(t, "/jobs/"+jobID, &job)
		if job.State == "staged" {
			inducedCluster = job.Cluster
			break
		}
		if job.State == "failed" {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Record everything the daemon will be held to after the crash.
	var beforeVersions, afterVersions any
	d1.getJSON(t, "/repos/"+movies.Name+"/versions", &beforeVersions)
	var beforeJobs, afterJobs any
	d1.getJSON(t, "/jobs", &beforeJobs)
	var beforeMetrics, afterMetrics struct {
		UnroutedBuffered int              `json:"unroutedBuffered"`
		InductionJobs    map[string]int64 `json:"inductionJobs"`
	}
	d1.getJSON(t, "/metrics", &beforeMetrics)
	if beforeMetrics.UnroutedBuffered != len(stocks.Pages) {
		t.Fatalf("unroutedBuffered = %d before crash, want %d",
			beforeMetrics.UnroutedBuffered, len(stocks.Pages))
	}

	d1.kill(t)

	// ---- Process 2: same data directory, no divergence allowed. ----
	d2 := startDaemon(t, bin, dataDir)

	d2.getJSON(t, "/repos/"+movies.Name+"/versions", &afterVersions)
	if !reflect.DeepEqual(beforeVersions, afterVersions) {
		t.Errorf("version history diverged:\nbefore: %s\nafter:  %s",
			mustJSON(beforeVersions), mustJSON(afterVersions))
	}
	d2.getJSON(t, "/jobs", &afterJobs)
	if !reflect.DeepEqual(beforeJobs, afterJobs) {
		t.Errorf("job state diverged:\nbefore: %s\nafter:  %s",
			mustJSON(beforeJobs), mustJSON(afterJobs))
	}
	d2.getJSON(t, "/metrics", &afterMetrics)
	if afterMetrics.UnroutedBuffered != beforeMetrics.UnroutedBuffered {
		t.Errorf("unroutedBuffered = %d after restart, want %d",
			afterMetrics.UnroutedBuffered, beforeMetrics.UnroutedBuffered)
	}
	if !reflect.DeepEqual(beforeMetrics.InductionJobs, afterMetrics.InductionJobs) {
		t.Errorf("inductionJobs = %v after restart, want %v",
			afterMetrics.InductionJobs, beforeMetrics.InductionJobs)
	}

	// Routed extraction still serves from the replayed active version.
	mp := movies.Pages[0]
	resp, err := http.Post(d2.base+"/extract?uri="+mp.URI, "text/html",
		strings.NewReader(dom.Render(mp.Doc)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed extract after restart: %d", resp.StatusCode)
	}

	// The staged job survived the crash; finish the loop on process 2.
	var promoted struct {
		Repo          string `json:"repo"`
		ActiveVersion int    `json:"activeVersion"`
	}
	d2.postJSON(t, "/jobs/"+jobID+"/promote", nil, &promoted)
	if promoted.Repo != inducedCluster {
		t.Fatalf("promoted %q, want %q", promoted.Repo, inducedCluster)
	}
	sp := stocks.Pages[len(stocks.Pages)-1]
	resp, err = http.Post(d2.base+"/extract?uri="+sp.URI, "text/html",
		strings.NewReader(dom.Render(sp.Doc)))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Repo string `json:"repo"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stock extract after promote: %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Repo != inducedCluster {
		t.Fatalf("stock page routed to %q, want %q", res.Repo, inducedCluster)
	}

	// Third boot over the same directory (this time after a clean kill):
	// recovery must be repeatable, not a one-shot.
	d2.kill(t)
	d3 := startDaemon(t, bin, dataDir)
	var finalVersions struct {
		ActiveVersion int `json:"activeVersion"`
	}
	d3.getJSON(t, "/repos/"+inducedCluster+"/versions", &finalVersions)
	if finalVersions.ActiveVersion == 0 {
		t.Fatal("promoted induced repository lost on third boot")
	}
}

// TestCrashRecoveryMonitorE2E crashes the daemon while the recrawl
// scheduler is live against a real site and holds the restart to the
// monitoring contract: the paused schedule's state replays byte for
// byte, the change feed comes back without duplicate or missing
// emissions (sequence numbers stay dense), and the surviving schedule
// resumes its cadence on the new process instead of starting over.
func TestCrashRecoveryMonitorE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real binary; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "extractd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building extractd: %v", err)
	}
	dataDir := filepath.Join(tmp, "data")

	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(81, 10))
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(82, 10))
	site, err := webfetch.NewSiteHandler(movies, stocks)
	if err != nil {
		t.Fatal(err)
	}
	siteSrv := httptest.NewServer(site)
	defer siteSrv.Close()

	monitorFlags := []string{
		"-monitor", "-recrawl-min", "50ms", "-recrawl-max", "400ms",
		"-recrawl-budget", "1",
	}
	d1 := startDaemon(t, bin, dataDir, monitorFlags...)

	d1.postJSON(t, "/repos?name="+movies.Name, buildSignedRepo(t, movies), nil)
	d1.postJSON(t, "/repos?name="+stocks.Name, buildSignedRepo(t, stocks), nil)
	for _, name := range []string{movies.Name, stocks.Name} {
		d1.postJSONStatus(t, "/schedules",
			map[string]string{"repo": name, "url": siteSrv.URL + "/", "interval": "50ms"},
			nil, http.StatusCreated)
	}

	type schedView struct {
		Repo        string `json:"repo"`
		Recrawls    int64  `json:"recrawls"`
		LastOutcome string `json:"lastOutcome"`
	}
	schedulesOf := func(d *daemon) (map[string]schedView, string) {
		body := d.getBody(t, "/schedules")
		var parsed struct {
			Schedules []schedView `json:"schedules"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("GET /schedules: %v: %s", err, body)
		}
		out := map[string]schedView{}
		for _, sc := range parsed.Schedules {
			out[sc.Repo] = sc
		}
		return out, body
	}
	// rawSchedule extracts one schedule's element verbatim from the
	// /schedules body — the byte-identity unit for the frozen schedule.
	rawSchedule := func(body, repo string) string {
		var parsed struct {
			Schedules []json.RawMessage `json:"schedules"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("GET /schedules: %v: %s", err, body)
		}
		for _, raw := range parsed.Schedules {
			var head struct {
				Repo string `json:"repo"`
			}
			if json.Unmarshal(raw, &head) == nil && head.Repo == repo {
				return string(raw)
			}
		}
		t.Fatalf("no schedule for %q in %s", repo, body)
		return ""
	}

	// Let both schedules complete at least two clean firings.
	deadline := time.Now().Add(30 * time.Second)
	for {
		views, _ := schedulesOf(d1)
		mv, sv := views[movies.Name], views[stocks.Name]
		if mv.Recrawls >= 2 && sv.Recrawls >= 2 &&
			mv.LastOutcome == "clean" && sv.LastOutcome == "clean" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedules never settled: %+v", views)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Freeze the stocks schedule; its state must now survive verbatim.
	d1.postJSON(t, "/schedules/"+stocks.Name+"/pause", nil, nil)
	_, body := schedulesOf(d1)
	stocksBefore := rawSchedule(body, stocks.Name)
	moviesBefore := func() int64 {
		views, _ := schedulesOf(d1)
		return views[movies.Name].Recrawls
	}()
	feedBefore := d1.getBody(t, "/changes")
	if len(feedBefore) == 0 {
		t.Fatal("change feed empty before crash")
	}

	d1.kill(t)

	// ---- Process 2: replay, verify, resume. ----
	d2 := startDaemon(t, bin, dataDir, monitorFlags...)

	_, body2 := schedulesOf(d2)
	if got := rawSchedule(body2, stocks.Name); got != stocksBefore {
		t.Errorf("paused schedule diverged after crash:\nbefore: %s\nafter:  %s",
			stocksBefore, got)
	}
	feedAfter := d2.getBody(t, "/changes")
	if feedAfter != feedBefore {
		t.Errorf("change feed diverged after crash (duplicate or lost emissions):\nbefore: %s\nafter:  %s",
			feedBefore, feedAfter)
	}
	lines := strings.Split(strings.TrimSuffix(feedAfter, "\n"), "\n")
	for i, line := range lines {
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad feed line %q: %v", line, err)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("feed seq %d at position %d — replay renumbered or duplicated", ev.Seq, i)
		}
	}

	// The movies cadence continues from the replayed counter.
	deadline = time.Now().Add(30 * time.Second)
	for {
		views, _ := schedulesOf(d2)
		if mv := views[movies.Name]; mv.Recrawls > moviesBefore {
			break
		}
		if time.Now().After(deadline) {
			views, _ := schedulesOf(d2)
			t.Fatalf("movies schedule never resumed past %d firings: %+v",
				moviesBefore, views)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if views, _ := schedulesOf(d2); views[stocks.Name].Recrawls != func() int64 {
		var sv schedView
		if err := json.Unmarshal([]byte(stocksBefore), &sv); err != nil {
			t.Fatal(err)
		}
		return sv.Recrawls
	}() {
		t.Error("paused stocks schedule fired after restart")
	}
}

func mustJSON(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(raw)
}
