// Command extractd is the online half of the paper's pipeline as a
// long-running service: it holds a hot-loadable registry of rule
// repositories (built offline with retrozilla) and serves concurrent
// extraction traffic through a bounded worker pool.
//
// Usage:
//
//	extractd -addr :8090 -rules movies=rules.json -rules books.xml
//
// then:
//
//	curl -X POST --data-binary @page.html 'http://localhost:8090/extract?repo=movies'
//	curl -X POST 'http://localhost:8090/extract/url?repo=movies&url=http://site/tt0074103.html'
//	curl -X POST --data-binary @rules.json 'http://localhost:8090/repos?name=movies'   # hot reload
//	curl 'http://localhost:8090/repos/movies/health'                                   # drift monitor
//	curl -X POST 'http://localhost:8090/repos/movies/repair'                           # rebuild broken rules
//	curl -X POST 'http://localhost:8090/repos/movies/rollback'                         # previous version
//	curl 'http://localhost:8090/metrics'
//
// With -auto-repair the daemon runs the repair → stage → shadow-evaluate
// → promote sequence on its own when a repository's drift alarm trips.
//
// With -induct the daemon captures unrouted pages instead of dropping
// them, clusters them by signature, and runs background
// wrapper-induction jobs over stable clusters (POST /induce supplies
// operator examples; -induct-truth preloads a truth.json oracle).
// Staged results are listed under /jobs and activated with
// POST /jobs/{id}/promote — after which the new cluster routes and
// extracts like any preloaded repository.
//
// With -data-dir the daemon journals every state mutation (repository
// publishes, routing signatures, buffered pages, induction job
// transitions) to an append-only WAL and periodically compacts it into
// a snapshot, so a crash or restart resumes exactly where it left off:
// active versions serve, staged versions await promotion, queued jobs
// re-queue and interrupted jobs restart. -fsync picks the flush policy
// and -snapshot-every the compaction cadence (see README "Durability").
//
// -page-cache sizes the content-addressed LRU of parsed documents
// (repeated posts of identical HTML skip the parser; hit/miss counters in
// /metrics). -pprof PORT serves net/http/pprof on localhost only, for
// profiling the live daemon.
//
// Each -rules flag names a repository file (JSON from retrozilla, or the
// XML interchange form), optionally prefixed "name=" to register it under
// a name other than its cluster name.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only by the -pprof listener
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/induct"
	"repro/internal/lifecycle"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/resilient"
	"repro/internal/rule"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/webfetch"
)

type rulesFlags []string

func (r *rulesFlags) String() string     { return strings.Join(*r, ",") }
func (r *rulesFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var rules rulesFlags
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "extraction worker count")
	queue := flag.Int("queue", 0, "task queue depth (default 4x workers)")
	noFetch := flag.Bool("no-fetch", false, "disable /extract/url outbound fetching")
	fetchHosts := flag.String("fetch-hosts", "",
		"comma-separated host allowlist for /extract/url (empty allows any host)")
	autoRepair := flag.Bool("auto-repair", false,
		"repair and promote a repository automatically when its drift alarm trips")
	driftWindow := flag.Int("drift-window", 0,
		"drift-detection sliding window size in pages (default 50)")
	driftRatio := flag.Float64("drift-ratio", 0,
		"failing-page ratio that trips the drift alarm (default 0.3)")
	pageCache := flag.Int("page-cache", service.DefaultPageCacheSize,
		"parsed-page LRU cache size in documents (0 disables)")
	pprofPort := flag.Int("pprof", 0,
		"serve net/http/pprof on localhost:PORT for live profiling (0 disables)")
	routerLearn := flag.Bool("router-learn", true,
		"grow routing signatures from cleanly extracted explicit-repo traffic")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second,
		"graceful-shutdown budget for in-flight requests on SIGINT/SIGTERM")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second,
		"per-request deadline (streaming /ingest is bounded per page instead; 0 disables)")
	admissionWait := flag.Duration("admission-wait", 2*time.Second,
		"how long a request may wait for a pool slot before a 503 + Retry-After (negative waits forever)")
	inductOn := flag.Bool("induct", false,
		"buffer unrouted pages and run background wrapper-induction jobs over them")
	inductMinPages := flag.Int("induct-min-pages", 0,
		"pages an unrouted bucket needs before it can become an induction job (default 8)")
	inductWorkers := flag.Int("induct-workers", 0,
		"induction job worker count (default 1)")
	inductTruth := flag.String("induct-truth", "",
		"truth.json file feeding the induction oracle (besides POST /induce examples and lifecycle golden values)")
	logFormat := flag.String("log-format", "text",
		"structured log encoding: text or json")
	logLevel := flag.String("log-level", "info",
		"minimum log level: debug, info, warn or error")
	dataDir := flag.String("data-dir", "",
		"durability directory (WAL + snapshots); empty runs memory-only and loses all state on exit")
	fsyncPolicy := flag.String("fsync", store.FsyncInterval,
		"WAL fsync policy: always (group-commit per append), interval (background flush) or never")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute,
		"interval between background WAL compactions into a snapshot (0 disables; boot and shutdown always compact)")
	monitorOn := flag.Bool("monitor", false,
		"enable the drift-adaptive recrawl scheduler (/schedules, /changes); requires outbound fetching")
	recrawlMin := flag.Duration("recrawl-min", time.Minute,
		"recrawl interval floor: alarmed/drifting schedules snap back to this")
	recrawlMax := flag.Duration("recrawl-max", 7*24*time.Hour,
		"recrawl interval ceiling: stable schedules decay toward this")
	recrawlBudget := flag.Int("recrawl-budget", 2,
		"max concurrent scheduled recrawls")
	flag.Var(&rules, "rules", "repository file to preload ([name=]path.json|path.xml); repeatable")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "extractd:", err)
		os.Exit(2)
	}

	if *pprofPort > 0 {
		// Localhost-only on purpose: the profiler exposes heap contents and
		// must never ride the public listen address.
		pprofAddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		go func() {
			logger.Info("pprof.listening", "url", "http://"+pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				logger.Error("pprof.failed", "error", err.Error())
			}
		}()
	}

	lc := lifecycle.Config{WindowSize: *driftWindow, TripRatio: *driftRatio, Logger: logger}

	// SIGINT/SIGTERM start a graceful shutdown: stop accepting, let
	// in-flight requests finish (bounded by -drain-timeout), drain the
	// worker pool, then exit. A second signal kills the process the
	// usual way (the NotifyContext restores default handling once fired).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := options{
		addr: *addr, workers: *workers, queue: *queue,
		noFetch: *noFetch, autoRepair: *autoRepair, routerLearn: *routerLearn,
		fetchHosts: *fetchHosts, pageCache: *pageCache, drainTimeout: *drainTimeout,
		requestTimeout: *requestTimeout, admissionWait: *admissionWait,
		lifecycle: lc, rules: rules,
		induct: *inductOn, inductMinPages: *inductMinPages,
		inductWorkers: *inductWorkers, inductTruth: *inductTruth,
		dataDir: *dataDir, fsync: *fsyncPolicy, snapshotEvery: *snapshotEvery,
		monitor: *monitorOn, recrawlMin: *recrawlMin, recrawlMax: *recrawlMax,
		recrawlBudget: *recrawlBudget,
		log:           logger,
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "extractd:", err)
		os.Exit(1)
	}
}

// options carries the parsed daemon configuration into run.
type options struct {
	addr           string
	workers, queue int
	noFetch        bool
	autoRepair     bool
	routerLearn    bool
	fetchHosts     string
	pageCache      int
	drainTimeout   time.Duration
	requestTimeout time.Duration
	admissionWait  time.Duration
	lifecycle      lifecycle.Config
	rules          []string
	induct         bool
	inductMinPages int
	inductWorkers  int
	inductTruth    string
	dataDir        string
	fsync          string
	snapshotEvery  time.Duration
	monitor        bool
	recrawlMin     time.Duration
	recrawlMax     time.Duration
	recrawlBudget  int
	log            *slog.Logger
}

func run(ctx context.Context, opts options) error {
	workers, queue := opts.workers, opts.queue
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	var fetcher *webfetch.Fetcher
	if !opts.noFetch {
		// Outbound resilience: transient failures retry with backoff, and
		// per-host circuit breakers stop hammering dead origins.
		fetcher = &webfetch.Fetcher{Retry: &resilient.Retrier{}}
	}
	srv := service.NewServer(workers, queue, fetcher)
	srv.Log = opts.log
	srv.RequestTimeout = opts.requestTimeout
	srv.AdmissionWait = opts.admissionWait
	srv.AutoRepair = opts.autoRepair
	srv.RouterLearn = opts.routerLearn
	srv.Lifecycle = opts.lifecycle
	srv.PageCache = service.NewPageCache(opts.pageCache)
	if opts.fetchHosts != "" {
		for _, h := range strings.Split(opts.fetchHosts, ",") {
			if h = strings.TrimSpace(h); h != "" {
				srv.AllowedHosts = append(srv.AllowedHosts, h)
			}
		}
	}
	if opts.induct {
		eng := srv.EnableInduction(induct.Config{
			MinPages: opts.inductMinPages,
			Workers:  opts.inductWorkers,
		})
		defer eng.Close()
		if opts.inductTruth != "" {
			truth, err := induct.LoadTruth(opts.inductTruth)
			if err != nil {
				return err
			}
			eng.AddTruth(truth)
			opts.log.Info("induct.truth.loaded",
				"pages", truth.Len(), "file", opts.inductTruth)
		}
	} else if opts.inductTruth != "" {
		return fmt.Errorf("-induct-truth requires -induct")
	}

	// The scheduler must exist before AttachStore so restored schedule
	// state and change-feed events have somewhere to land; its cadence
	// loop starts only after restore + preload, just before serving.
	var sched *monitor.Scheduler
	if opts.monitor {
		if opts.noFetch {
			return fmt.Errorf("-monitor requires outbound fetching (drop -no-fetch)")
		}
		sched = srv.EnableMonitor(monitor.Config{
			MinInterval: opts.recrawlMin,
			MaxInterval: opts.recrawlMax,
			Budget:      opts.recrawlBudget,
		})
	}

	// Durability: open the data directory (replaying any previous run's
	// snapshot + WAL tail) before the -rules preload, so restored state
	// is visible when deciding whether a preload would duplicate it.
	var st *store.Store
	if opts.dataDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir: opts.dataDir, Fsync: opts.fsync, Logger: opts.log,
		})
		if err != nil {
			return err
		}
		if err := srv.AttachStore(st); err != nil {
			st.Close()
			return err
		}
		// Final compaction on the way out: the next boot restores from
		// one snapshot instead of replaying the whole session's WAL.
		defer func() {
			if err := srv.SaveSnapshot(); err != nil {
				opts.log.Warn("store.final-snapshot-failed", "error", err.Error())
			}
			if err := st.Close(); err != nil {
				opts.log.Warn("store.close-failed", "error", err.Error())
			}
		}()
		if opts.snapshotEvery > 0 {
			go snapshotLoop(ctx, srv, opts.snapshotEvery, opts.log)
		}
	}

	for _, spec := range opts.rules {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		var repo *rule.Repository
		var err error
		if strings.HasSuffix(path, ".xml") {
			repo, err = rule.LoadXML(path)
		} else {
			repo, err = rule.Load(path)
		}
		if err != nil {
			return err
		}
		// A restart over a data directory already replayed this
		// repository; re-loading the unchanged file would mint a
		// duplicate version every boot. Changed files load normally
		// (new version, immediately active — the usual hot reload).
		if st != nil {
			resolved := name
			if resolved == "" {
				resolved = repo.Cluster
			}
			if e, ok := srv.Registry.Get(resolved); ok && sameRepoJSON(e.Repo, repo) {
				opts.log.Info("registry.preload.unchanged",
					"repo", resolved, "version", e.Version, "file", path)
				continue
			}
		}
		// The registry load event itself is logged by the server.
		if _, err := srv.LoadRepo(name, repo); err != nil {
			return err
		}
	}

	if sched != nil {
		go func() {
			if err := sched.Run(ctx); err != nil && ctx.Err() == nil {
				opts.log.Warn("monitor.run.stopped", "error", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		srv.Close()
		return err
	}
	opts.log.Info("extractd.listening",
		"addr", ln.Addr().String(), "workers", workers, "queue", queue,
		"repos", srv.Registry.Len(), "routable", srv.Router.Len(),
		"induction", opts.induct, "monitor", opts.monitor, "durable", st != nil)
	return serve(ctx, ln, srv, opts.drainTimeout, opts.log)
}

// sameRepoJSON reports whether two repositories marshal identically —
// the preload skip test for restarts over a data directory.
func sameRepoJSON(a, b *rule.Repository) bool {
	aj, err := json.Marshal(a)
	if err != nil {
		return false
	}
	bj, err := json.Marshal(b)
	if err != nil {
		return false
	}
	return bytes.Equal(aj, bj)
}

// snapshotLoop compacts the WAL into a snapshot on a fixed cadence
// until the daemon begins shutting down (the final compaction happens
// on the shutdown path itself).
func snapshotLoop(ctx context.Context, srv *service.Server, every time.Duration, log *slog.Logger) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := srv.SaveSnapshot(); err != nil {
				log.Warn("store.snapshot-failed", "error", err.Error())
			}
		}
	}
}

// newHTTPServer wraps the handler in a listener configuration hardened
// against slow clients (slowloris): a client must deliver its headers
// within ReadHeaderTimeout and the whole exchange within
// ReadTimeout/WriteTimeout, or the connection is dropped. The streaming
// /ingest route clears its connection deadlines itself (per-connection
// ResponseController carve-out in the handler) — a site migration
// legitimately runs for hours while these limits protect every other
// route.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// serve runs the HTTP server until ctx is cancelled (signal) or the
// listener fails, then shuts down gracefully: new connections are
// refused, in-flight requests get drainTimeout to finish, and the
// extraction worker pool drains before the function returns.
func serve(ctx context.Context, ln net.Listener, srv *service.Server, drainTimeout time.Duration, log *slog.Logger) error {
	httpSrv := newHTTPServer(srv.Handler())
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	var err error
	select {
	case err = <-errCh:
		// Listener failure: nothing graceful left to do.
		httpSrv.Close()
	case <-ctx.Done():
		log.Info("extractd.shutdown", "reason", "signal", "drainTimeout", drainTimeout.String())
		shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		if serr := httpSrv.Shutdown(shutCtx); serr != nil {
			log.Warn("extractd.forced-close", "error", serr.Error())
			httpSrv.Close()
		}
		cancel()
	}
	// Drain queued extractions so no accepted work is abandoned.
	srv.Close()
	if err != nil && err != http.ErrServerClosed {
		return err
	}
	log.Info("extractd.exited")
	return nil
}
