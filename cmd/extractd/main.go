// Command extractd is the online half of the paper's pipeline as a
// long-running service: it holds a hot-loadable registry of rule
// repositories (built offline with retrozilla) and serves concurrent
// extraction traffic through a bounded worker pool.
//
// Usage:
//
//	extractd -addr :8090 -rules movies=rules.json -rules books.xml
//
// then:
//
//	curl -X POST --data-binary @page.html 'http://localhost:8090/extract?repo=movies'
//	curl -X POST 'http://localhost:8090/extract/url?repo=movies&url=http://site/tt0074103.html'
//	curl -X POST --data-binary @rules.json 'http://localhost:8090/repos?name=movies'   # hot reload
//	curl 'http://localhost:8090/repos/movies/health'                                   # drift monitor
//	curl -X POST 'http://localhost:8090/repos/movies/repair'                           # rebuild broken rules
//	curl -X POST 'http://localhost:8090/repos/movies/rollback'                         # previous version
//	curl 'http://localhost:8090/metrics'
//
// With -auto-repair the daemon runs the repair → stage → shadow-evaluate
// → promote sequence on its own when a repository's drift alarm trips.
//
// -page-cache sizes the content-addressed LRU of parsed documents
// (repeated posts of identical HTML skip the parser; hit/miss counters in
// /metrics). -pprof PORT serves net/http/pprof on localhost only, for
// profiling the live daemon.
//
// Each -rules flag names a repository file (JSON from retrozilla, or the
// XML interchange form), optionally prefixed "name=" to register it under
// a name other than its cluster name.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only by the -pprof listener
	"os"
	"runtime"
	"strings"

	"repro/internal/lifecycle"
	"repro/internal/rule"
	"repro/internal/service"
	"repro/internal/webfetch"
)

type rulesFlags []string

func (r *rulesFlags) String() string     { return strings.Join(*r, ",") }
func (r *rulesFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var rules rulesFlags
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "extraction worker count")
	queue := flag.Int("queue", 0, "task queue depth (default 4x workers)")
	noFetch := flag.Bool("no-fetch", false, "disable /extract/url outbound fetching")
	fetchHosts := flag.String("fetch-hosts", "",
		"comma-separated host allowlist for /extract/url (empty allows any host)")
	autoRepair := flag.Bool("auto-repair", false,
		"repair and promote a repository automatically when its drift alarm trips")
	driftWindow := flag.Int("drift-window", 0,
		"drift-detection sliding window size in pages (default 50)")
	driftRatio := flag.Float64("drift-ratio", 0,
		"failing-page ratio that trips the drift alarm (default 0.3)")
	pageCache := flag.Int("page-cache", service.DefaultPageCacheSize,
		"parsed-page LRU cache size in documents (0 disables)")
	pprofPort := flag.Int("pprof", 0,
		"serve net/http/pprof on localhost:PORT for live profiling (0 disables)")
	flag.Var(&rules, "rules", "repository file to preload ([name=]path.json|path.xml); repeatable")
	flag.Parse()

	if *pprofPort > 0 {
		// Localhost-only on purpose: the profiler exposes heap contents and
		// must never ride the public listen address.
		pprofAddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		go func() {
			fmt.Printf("pprof listening on http://%s/debug/pprof/\n", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "extractd: pprof:", err)
			}
		}()
	}

	lc := lifecycle.Config{WindowSize: *driftWindow, TripRatio: *driftRatio}
	if err := run(*addr, *workers, *queue, *noFetch, *autoRepair, *fetchHosts, *pageCache, lc, rules); err != nil {
		fmt.Fprintln(os.Stderr, "extractd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, noFetch, autoRepair bool, fetchHosts string, pageCache int, lc lifecycle.Config, rules []string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	var fetcher *webfetch.Fetcher
	if !noFetch {
		fetcher = &webfetch.Fetcher{}
	}
	srv := service.NewServer(workers, queue, fetcher)
	defer srv.Close()
	srv.AutoRepair = autoRepair
	srv.Lifecycle = lc
	srv.PageCache = service.NewPageCache(pageCache)
	if fetchHosts != "" {
		for _, h := range strings.Split(fetchHosts, ",") {
			if h = strings.TrimSpace(h); h != "" {
				srv.AllowedHosts = append(srv.AllowedHosts, h)
			}
		}
	}

	for _, spec := range rules {
		name, path := "", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		var repo *rule.Repository
		var err error
		if strings.HasSuffix(path, ".xml") {
			repo, err = rule.LoadXML(path)
		} else {
			repo, err = rule.Load(path)
		}
		if err != nil {
			return err
		}
		e, err := srv.Registry.Load(name, repo)
		if err != nil {
			return err
		}
		fmt.Printf("loaded repository %q (%d components)\n", e.Name, len(e.Repo.Rules))
	}

	fmt.Printf("extractd listening on %s (%d workers, queue %d, %d repos)\n",
		addr, workers, queue, srv.Registry.Len())
	return http.ListenAndServe(addr, srv.Handler())
}
