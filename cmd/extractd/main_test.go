package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/service"
)

// TestGracefulShutdown: cancelling the serve context (the SIGINT/SIGTERM
// path) stops accepting, lets an in-flight request finish with a real
// response, drains the worker pool and returns.
func TestGracefulShutdown(t *testing.T) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(41, 12))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		t.Fatal(err)
	}

	srv := service.NewServer(2, 4, nil)
	if _, err := srv.LoadRepo("movies", repo); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, ln, srv, 5*time.Second, obs.NopLogger()) }()

	// Requests in flight when the signal lands must complete.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			page := cl.Pages[i%len(cl.Pages)]
			resp, err := http.Post(base+"/extract?repo=movies", "text/html",
				strings.NewReader("<html><body><b>Title:</b> x <br></body></html>"))
			if err != nil {
				errs <- fmt.Errorf("request %d (%s): %v", i, page.URI, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	// Give the requests a moment to be accepted, then "signal".
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}

	// The pool is drained and closed: no new work is accepted.
	if err := srv.Pool.Do(context.Background(), func() {}); err == nil {
		t.Error("pool still accepting work after shutdown")
	}
	// The listener is released: a fresh server can bind the same address.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Errorf("address still bound after shutdown: %v", err)
	} else {
		ln2.Close()
	}
}

// TestHTTPServerHardened: the listener configuration defends against
// slow clients — every timeout and the header cap must be set.
func TestHTTPServerHardened(t *testing.T) {
	s := newHTTPServer(http.NotFoundHandler())
	if s.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: headers can trickle in forever (slowloris)")
	}
	if s.ReadTimeout <= 0 || s.WriteTimeout <= 0 {
		t.Errorf("ReadTimeout=%v WriteTimeout=%v: whole-exchange deadlines unset",
			s.ReadTimeout, s.WriteTimeout)
	}
	if s.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections pile up")
	}
	if s.MaxHeaderBytes <= 0 {
		t.Error("MaxHeaderBytes unset: unbounded header memory per connection")
	}
}

// TestSlowHeaderClientDropped drives a real connection that sends its
// request header one byte at a time past the header deadline and must be
// disconnected, while a normal client on the same server is served.
func TestSlowHeaderClientDropped(t *testing.T) {
	srv := service.NewServer(1, 1, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := newHTTPServer(srv.Handler())
	httpSrv.ReadHeaderTimeout = 100 * time.Millisecond
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	// Never finish the header; the server must cut the connection.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the half-sent-header connection alive past ReadHeaderTimeout")
	}

	// A well-behaved client is unaffected.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}
