// Command metriclint checks a Prometheus text exposition against the
// repo's metric naming conventions: the extractd_ prefix, lowercase
// snake_case names, HELP on every family, _total on counters, unit
// suffixes on gauges and histograms, and a closed label-key allowlist
// (the cardinality budget). CI runs it with no arguments, which lints
// the daemon's own built-in catalogue — a new metric with a bad name or
// an unbounded label fails the build before it reaches a dashboard.
//
// Usage:
//
//	metriclint            # lint extractd's built-in metric catalogue
//	metriclint -f dump.txt  # lint a scraped exposition file
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	file := flag.String("f", "",
		"lint a scraped exposition file instead of the built-in catalogue")
	flag.Parse()
	problems, fams, err := lint(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "metriclint:", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d families clean\n", len(fams))
}

// lint renders or reads an exposition and runs the naming linter.
func lint(file string) ([]string, []*obs.PromFamily, error) {
	var r io.Reader
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	} else {
		var buf bytes.Buffer
		if err := service.WriteProm(&buf, exercisedSnapshot()); err != nil {
			return nil, nil, err
		}
		r = &buf
	}
	fams, err := obs.ParseProm(r)
	if err != nil {
		return nil, nil, err
	}
	return obs.Lint(fams, obs.LintOptions{}), fams, nil
}

// exercisedSnapshot populates every Snapshot field with synthetic data
// so each metric family renders with its full label set — the linter
// sees the catalogue exactly as a busy daemon would expose it.
func exercisedSnapshot() service.Snapshot {
	hist := obs.HistogramSnapshot{
		Count: 3, Sum: 0.5,
		Buckets: []obs.HistogramBucket{{LE: 0.1, Count: 2}, {LE: 0, Count: 1}},
	}
	stages := pipeline.TelemetrySnapshot{}
	for _, name := range []string{"source", "classify", "extract", "sink"} {
		stages = append(stages, pipeline.StageSnapshot{
			Stage: name, InFlight: 1, Errors: 1, Latency: hist,
		})
	}
	return service.Snapshot{
		UptimeSeconds:      12.5,
		Requests:           map[string]int64{"extract": 3, "ingest": 1},
		Errors:             map[string]int64{"extract": 1},
		ExtractionFailures: map[string]int64{"missing-mandatory": 1, "multiple-values": 1},
		Lifecycle:          map[string]int64{"repair.attempted": 1, "rollback": 1},
		PagesExtracted:     10,
		PageCacheHits:      4,
		PageCacheMisses:    6,
		RouterHits:         5,
		RouterMisses:       2,
		RouterUnrouted:     3,
		StreamHits:         7,
		StreamFallbacks:    3,
		StreamFallbackReasons: map[string]int64{
			"general-xpath": 1, "parsed-doc": 1, "depth": 1,
		},
		InductionJobs: map[string]int64{
			"queued": 1, "running": 1, "staged": 1, "failed": 1,
		},
		UnroutedBuffered:      3,
		UnroutedBufferedBytes: 4096,
		UnroutedEvicted:       1,
		UnroutedDropped:       1,
		LatencySumSeconds:     0.5,
		LatencyCount:          3,
		LatencyHistogram: []service.HistogramBucket{
			{LE: 0.1, Count: 2}, {Count: 1},
		},
		Pool: service.PoolSnapshot{
			Workers: 4, QueueDepth: 1, QueueCapacity: 16,
			InFlight: 2, SaturationRatio: 0.5,
		},
		Repos: []service.RepoVersionCount{
			{Repo: "movies", Version: 1, Pages: 5, FailedPages: 1, Failures: 2},
			{Repo: "movies", Version: 2, Active: true, Pages: 5},
		},
		Pipeline:     stages,
		FetchRetries: 4,
		Fetch: []service.FetchOutcomeCount{
			{Host: "example.com", Outcome: "ok", Count: 9},
			{Host: "example.com", Outcome: "transient", Count: 2},
			{Host: "dead.example", Outcome: "breaker_open", Count: 5},
		},
		Breakers: []service.BreakerStatus{
			{Host: "example.com", State: 0}, {Host: "dead.example", State: 2},
		},
		Shed:            2,
		PanicsRecovered: map[string]int64{"handler": 1, "extract": 1},
		Recrawls:        map[string]int64{"clean": 5, "repaired": 1, "failed": 1},
		Schedules: []service.ScheduleMetric{
			{Repo: "movies", IntervalSeconds: 120},
			{Repo: "stocks", IntervalSeconds: 60},
		},
		ChangefeedRecords: map[string]int64{"new": 12, "changed": 3, "vanished": 1},
		Build:             service.BuildInfo{GoVersion: "go1.24", Revision: "abc123"},
		Store: &store.Metrics{
			WALBytes: 2048, WALRecords: 12, Fsyncs: 3, TornTails: 1,
			ReplayRecords: 12, ReplayDurationSeconds: 0.02,
			SnapshotAgeSeconds: 30, Snapshots: 2,
		},
	}
}
