package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The daemon's own metric catalogue must satisfy the naming conventions
// the linter enforces — this is the check CI runs via `go run`.
func TestBuiltinCatalogueIsClean(t *testing.T) {
	problems, fams, err := lint("")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("built-in catalogue has lint problems:\n%s", strings.Join(problems, "\n"))
	}
	if len(fams) < 20 {
		t.Fatalf("expected a rich catalogue, parsed only %d families", len(fams))
	}
}

func TestLintFlagsViolations(t *testing.T) {
	bad := `# HELP bad_requests requests
# TYPE bad_requests counter
bad_requests{uri="/a/b"} 3
# TYPE extractd_queue gauge
extractd_queue 1
`
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, _, err := lint(path)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		`bad_requests: missing "extractd_" prefix`,
		"counter must end in _total",
		`label "uri" not in the cardinality allowlist`,
		"extractd_queue: missing HELP",
		"gauge must end in a unit suffix",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
}
