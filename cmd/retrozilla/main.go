// Command retrozilla builds mapping rules for a page cluster on disk —
// the batch equivalent of the Retrozilla browser plug-in. The human
// operator's two inputs (pointing at a component value and naming it) are
// supplied by the cluster's truth.json: for every component the oracle
// locates the DOM nodes whose string value matches the recorded ground
// truth, exactly as an operator would click the rendered value.
//
// Usage:
//
//	retrozilla -site ./site/imdb-movies -sample 10 -out rules.json [-v]
//	retrozilla -site ./pages -interactive -components price,title -out rules.json
//
// The -site directory is produced by sitegen (pages.json + truth.json +
// HTML files) or by crawl (no truth.json — use -interactive). The working
// sample is the first -sample pages of the manifest; rules are checked
// and refined against it, then recorded to -out as a rule repository.
//
// In -interactive mode the operator plays the Retrozilla user directly:
// the page's values are listed with their visual context and selected by
// number, mirroring the control-panel workflow of Figure 6.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/interactive"
	"repro/internal/rule"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

func main() {
	site := flag.String("site", "", "cluster directory (from sitegen or crawl)")
	sampleSize := flag.Int("sample", 10, "working-sample size")
	out := flag.String("out", "rules.json", "output rule repository (directory in -induct mode)")
	verbose := flag.Bool("v", false, "log check tables and refinements")
	interactiveMode := flag.Bool("interactive", false, "prompt for value selection instead of using truth.json")
	inductMode := flag.Bool("induct", false,
		"treat -site as a mixed multi-cluster directory: bucket pages by signature and run one induction job per cluster (extractd's job engine, batch-driven)")
	components := flag.String("components", "", "comma-separated component names (interactive mode)")
	flag.Parse()
	if *site == "" {
		fmt.Fprintln(os.Stderr, "retrozilla: -site is required")
		os.Exit(2)
	}
	var err error
	switch {
	case *interactiveMode:
		err = runInteractive(*site, *sampleSize, *out, *components)
	case *inductMode:
		err = runInduct(*site, *sampleSize, *out, *verbose)
	default:
		err = run(*site, *sampleSize, *out, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "retrozilla:", err)
		os.Exit(1)
	}
}

// runInteractive drives the Figure 6 style session on the terminal.
func runInteractive(site string, sampleSize int, out, componentList string) error {
	if componentList == "" {
		return fmt.Errorf("-interactive requires -components name[,name...]")
	}
	man, pages, err := loadSite(site)
	if err != nil {
		return err
	}
	if sampleSize > len(pages) {
		sampleSize = len(pages)
	}
	var comps []string
	for _, c := range strings.Split(componentList, ",") {
		if c = strings.TrimSpace(c); c != "" {
			comps = append(comps, c)
		}
	}
	session := interactive.NewSession(os.Stdin, os.Stdout)
	results, err := session.BuildRules(core.Sample(pages[:sampleSize]), comps)
	if err != nil {
		return err
	}
	repo := rule.NewRepository(man.Cluster)
	for _, comp := range comps {
		if res, ok := results[comp]; ok && res.OK {
			if err := repo.Record(res.Rule); err != nil {
				return err
			}
		}
	}
	repo.Signature = clusterSignature(pages)
	if err := saveRepo(repo, out); err != nil {
		return err
	}
	fmt.Printf("recorded %d rule(s) -> %s\n", len(repo.Rules), out)
	return nil
}

type manifest struct {
	Cluster    string            `json:"cluster"`
	Components []string          `json:"components"`
	Pages      map[string]string `json:"pages"`
}

func run(site string, sampleSize int, out string, verbose bool) error {
	man, pages, err := loadSite(site)
	if err != nil {
		return err
	}
	truth, err := loadTruth(filepath.Join(site, "truth.json"))
	if err != nil {
		return err
	}
	if sampleSize > len(pages) {
		sampleSize = len(pages)
	}
	sample := core.Sample(pages[:sampleSize])
	oracle := truthOracle(truth)

	repo := rule.NewRepository(man.Cluster)
	b := &core.Builder{Sample: sample, Oracle: oracle}
	for _, comp := range man.Components {
		res, err := b.BuildRule(comp)
		if err != nil {
			fmt.Printf("component %-12s SKIPPED: %v\n", comp, err)
			continue
		}
		status := "recorded"
		if res.OK {
			if err := repo.Record(res.Rule); err != nil {
				return err
			}
		} else {
			status = "NOT CONVERGED (not recorded)"
		}
		fmt.Printf("component %-12s %d refinement(s): %s\n", comp, len(res.Actions), status)
		if verbose {
			for _, a := range res.Actions {
				fmt.Printf("  refine: %s\n", a)
			}
			fmt.Println(res.FinalReport().Table())
		}
	}
	repo.Signature = clusterSignature(pages)
	if err := saveRepo(repo, out); err != nil {
		return err
	}
	fmt.Printf("recorded %d rule(s) for cluster %s -> %s (signature over %d pages)\n",
		len(repo.Rules), repo.Cluster, out, repo.Signature.Pages)
	return nil
}

// clusterSignature fingerprints the whole cluster, not just the working
// sample: the signature's job is recognizing any page of the cluster, so
// it should absorb every structural variant the site directory holds.
func clusterSignature(pages []*core.Page) *cluster.Signature {
	sig := cluster.NewSignature()
	for _, p := range pages {
		sig.Add(cluster.Fingerprint(cluster.PageInfo{URI: p.URI, Doc: p.Doc}))
	}
	return sig
}

// saveRepo writes the repository as JSON, or as the XML interchange
// format when the path ends in .xml.
func saveRepo(repo *rule.Repository, out string) error {
	if strings.HasSuffix(out, ".xml") {
		return repo.SaveXML(out)
	}
	return repo.Save(out)
}

func loadSite(site string) (*manifest, []*core.Page, error) {
	data, err := os.ReadFile(filepath.Join(site, "pages.json"))
	if err != nil {
		return nil, nil, err
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, nil, err
	}
	uris := make([]string, 0, len(man.Pages))
	for uri := range man.Pages {
		uris = append(uris, uri)
	}
	sort.Slice(uris, func(i, j int) bool { return man.Pages[uris[i]] < man.Pages[uris[j]] })
	var pages []*core.Page
	for _, uri := range uris {
		html, err := os.ReadFile(filepath.Join(site, man.Pages[uri]))
		if err != nil {
			return nil, nil, err
		}
		pages = append(pages, core.NewPage(uri, string(html)))
	}
	return &man, pages, nil
}

func loadTruth(path string) (map[string]map[string][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var truth map[string]map[string][]string
	if err := json.Unmarshal(data, &truth); err != nil {
		return nil, err
	}
	return truth, nil
}

// truthOracle locates component values in a parsed page by their recorded
// string values — the file-based stand-in for the operator's click.
func truthOracle(truth map[string]map[string][]string) core.Oracle {
	return core.OracleFunc(func(component string, p *core.Page) []*dom.Node {
		vals := truth[p.URI][component]
		if len(vals) == 0 {
			return nil
		}
		var out []*dom.Node
		used := map[*dom.Node]bool{}
		for _, v := range vals {
			if n := findByValue(p.Doc, v, used); n != nil {
				used[n] = true
				out = append(out, n)
			}
		}
		if len(out) != len(vals) {
			return nil // ambiguous or stale truth: treat as absent
		}
		return out
	})
}

// findByValue returns the first unused minimal node whose normalized
// string value equals v: text nodes first, then the smallest element.
func findByValue(doc *dom.Node, v string, used map[*dom.Node]bool) *dom.Node {
	var textHit, elemHit *dom.Node
	dom.Walk(doc, func(n *dom.Node) bool {
		if textHit != nil {
			return false
		}
		switch n.Type {
		case dom.TextNode:
			if !used[n] && textutil.NormalizeSpace(n.Data) == v {
				textHit = n
			}
		case dom.ElementNode:
			if !used[n] && textutil.NormalizeSpace(xpath.NodeStringValue(n)) == v {
				// Prefer the deepest (most specific) matching element.
				if elemHit == nil || dom.IsAncestorOf(elemHit, n) {
					elemHit = n
				}
			}
		}
		return true
	})
	if textHit != nil {
		return textHit
	}
	return elemHit
}
