package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/rule"
)

func pageFromHTML(uri, html string) *core.Page { return core.NewPage(uri, html) }

// writeSite materializes a generated cluster the way sitegen does.
func writeSite(t *testing.T, dir string, cl *corpus.Cluster) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man := manifest{Cluster: cl.Name, Components: cl.ComponentNames(),
		Pages: map[string]string{}}
	truth := map[string]map[string][]string{}
	for i, p := range cl.Pages {
		file := filepath.Join(dir, filenameFor(i))
		if err := os.WriteFile(file, []byte(dom.Render(p.Doc)), 0o644); err != nil {
			t.Fatal(err)
		}
		man.Pages[p.URI] = filenameFor(i)
		tv := map[string][]string{}
		for _, comp := range cl.ComponentNames() {
			if vs := cl.TruthStrings(p, comp); len(vs) > 0 {
				tv[comp] = vs
			}
		}
		truth[p.URI] = tv
	}
	mustJSON(t, filepath.Join(dir, "pages.json"), man)
	mustJSON(t, filepath.Join(dir, "truth.json"), truth)
}

func filenameFor(i int) string { return fmt.Sprintf("page%03d.html", i) }

func mustJSON(t *testing.T, path string, v interface{}) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildsRepositoryFromDisk(t *testing.T) {
	dir := t.TempDir()
	site := filepath.Join(dir, "stocks")
	cl := corpus.GenerateStocks(corpus.DefaultStockProfile(3, 12))
	writeSite(t, site, cl)
	out := filepath.Join(dir, "rules.json")
	if err := run(site, 8, out, false); err != nil {
		t.Fatal(err)
	}
	repo, err := rule.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Rules) != len(cl.Components) {
		t.Errorf("recorded %d rules, want %d", len(repo.Rules), len(cl.Components))
	}
}

func TestRunMissingTruth(t *testing.T) {
	dir := t.TempDir()
	site := filepath.Join(dir, "s")
	cl := corpus.GenerateStocks(corpus.DefaultStockProfile(3, 3))
	writeSite(t, site, cl)
	if err := os.Remove(filepath.Join(site, "truth.json")); err != nil {
		t.Fatal(err)
	}
	if err := run(site, 3, filepath.Join(dir, "r.json"), false); err == nil {
		t.Error("missing truth.json must fail in batch mode")
	}
}

func TestTruthOracleAmbiguityIsAbsence(t *testing.T) {
	// A truth value that does not occur in the page yields nil (absent),
	// never a wrong node.
	truth := map[string]map[string][]string{
		"u": {"price": {"$99.99"}},
	}
	o := truthOracle(truth)
	p := pageFromHTML("u", `<html><body><span>$10.00</span></body></html>`)
	if nodes := o.Select("price", p); nodes != nil {
		t.Errorf("stale truth must be absence, got %v", nodes)
	}
}

func TestFindByValuePrefersTextAndDeepest(t *testing.T) {
	p := pageFromHTML("u", `<html><body><div><span>X</span></div><p>X</p></body></html>`)
	// Text node preferred over any element.
	n := findByValue(p.Doc, "X", map[*dom.Node]bool{})
	if n == nil || n.Type != dom.TextNode {
		t.Fatalf("findByValue = %v", n)
	}
}

// writeMixedSite merges several clusters into ONE pages directory — the
// unlabeled multi-concept crawl the -induct batch mode is for.
func writeMixedSite(t *testing.T, dir string, clusters ...*corpus.Cluster) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man := manifest{Cluster: "mixed", Pages: map[string]string{}}
	truth := map[string]map[string][]string{}
	i := 0
	for _, cl := range clusters {
		for _, p := range cl.Pages {
			file := filenameFor(i)
			if err := os.WriteFile(filepath.Join(dir, file), []byte(dom.Render(p.Doc)), 0o644); err != nil {
				t.Fatal(err)
			}
			man.Pages[p.URI] = file
			tv := map[string][]string{}
			for _, comp := range cl.ComponentNames() {
				if vs := cl.TruthStrings(p, comp); len(vs) > 0 {
					tv[comp] = vs
				}
			}
			truth[p.URI] = tv
			i++
		}
	}
	mustJSON(t, filepath.Join(dir, "pages.json"), man)
	mustJSON(t, filepath.Join(dir, "truth.json"), truth)
}

// TestRunInductBuildsARepositoryPerCluster: the batch face of the
// induction engine — a mixed stocks+books directory is bucketed by
// signature and yields one staged repository file per concept, each
// carrying its cluster signature and working rules.
func TestRunInductBuildsARepositoryPerCluster(t *testing.T) {
	dir := t.TempDir()
	site := filepath.Join(dir, "mixed")
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(51, 10))
	books := corpus.GenerateBooks(corpus.DefaultBookProfile(52, 10))
	writeMixedSite(t, site, stocks, books)

	out := filepath.Join(dir, "staged")
	if err := runInduct(site, 8, out, false); err != nil {
		t.Fatal(err)
	}
	for name, cl := range map[string]*corpus.Cluster{
		"quotes-example-q":   stocks,
		"books-example-item": books,
	} {
		repo, err := rule.Load(filepath.Join(out, name+".json"))
		if err != nil {
			t.Fatalf("staged repository %s: %v", name, err)
		}
		if len(repo.Rules) != len(cl.Components) {
			t.Errorf("%s: %d rules, want %d", name, len(repo.Rules), len(cl.Components))
		}
		if repo.Signature == nil || repo.Signature.Pages != len(cl.Pages) {
			t.Errorf("%s: signature %+v, want centroid over %d pages", name, repo.Signature, len(cl.Pages))
		}
	}
}

// TestRunInductFailsOnUncoveredCluster: a cluster whose pages truth.json
// does not cover stages nothing — and the run must say so with a
// non-zero exit instead of silently succeeding.
func TestRunInductFailsOnUncoveredCluster(t *testing.T) {
	dir := t.TempDir()
	site := filepath.Join(dir, "mixed")
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(53, 8))
	books := corpus.GenerateBooks(corpus.DefaultBookProfile(54, 8))
	writeMixedSite(t, site, stocks, books)

	// Strip the books URIs from truth.json: the operator never labeled
	// that concept.
	truth, err := loadTruth(filepath.Join(site, "truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range books.Pages {
		delete(truth, p.URI)
	}
	mustJSON(t, filepath.Join(site, "truth.json"), truth)

	out := filepath.Join(dir, "staged")
	err = runInduct(site, 8, out, false)
	if err == nil {
		t.Fatal("runInduct succeeded with an uncovered cluster")
	}
	// The covered cluster still staged.
	if _, err := rule.Load(filepath.Join(out, "quotes-example-q.json")); err != nil {
		t.Errorf("covered cluster not staged: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(out, "books-example-item.json")); statErr == nil {
		t.Error("uncovered cluster staged a repository from nothing")
	}
}
