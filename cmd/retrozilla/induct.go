package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/induct"
	"repro/internal/rule"
)

// runInduct is the batch face of the wrapper-induction job engine: the
// -site directory is treated as a mixed, unlabeled crawl (no per-cluster
// split required — pages of several concepts may share one manifest).
// Every page is fed through the same capture → bucket → plan → build
// loop the extractd daemon runs over live unrouted traffic, with
// truth.json as the oracle, and each staged repository is written to the
// -out directory as <cluster-name>.json, signature included.
func runInduct(site string, sampleSize int, out string, verbose bool) error {
	_, pages, err := loadSite(site)
	if err != nil {
		return err
	}
	truth, err := induct.LoadTruth(filepath.Join(site, "truth.json"))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Batch tuning: the material is all here, so no minimum evidence or
	// stability gating — every bucket with two oracle-covered pages is
	// worth a job, and jobs can use every core.
	var mu sync.Mutex
	staged := map[string]string{} // cluster name → output path
	eng := induct.NewEngine(induct.Config{
		MinPages:     2,
		StableStreak: 1,
		MinSample:    2,
		SampleSize:   sampleSize,
		Workers:      runtime.GOMAXPROCS(0),
	}, induct.StagerFunc(func(name string, repo *rule.Repository) (int, error) {
		path := filepath.Join(out, name+".json")
		if err := repo.Save(path); err != nil {
			return 0, err
		}
		mu.Lock()
		staged[name] = path
		mu.Unlock()
		return 1, nil
	}))
	defer eng.Close()
	eng.AddTruth(truth)

	captured := 0
	for _, p := range pages {
		if eng.Capture(p) {
			captured++
		}
	}
	queued := eng.Plan()
	fmt.Printf("captured %d page(s) into %d bucket(s); %d job(s) queued\n",
		captured, len(eng.Buffer().Buckets()), len(queued))
	eng.Wait()

	failed := 0
	for _, j := range eng.Jobs() {
		switch j.State {
		case induct.JobStaged:
			mu.Lock()
			path := staged[j.Cluster]
			mu.Unlock()
			fmt.Printf("job %s: cluster %s (%d pages, sample %d) -> %s\n",
				j.ID, j.Cluster, j.Pages, j.Sample, path)
			if verbose {
				for comp, outcome := range j.Components {
					fmt.Printf("  %-12s %s\n", comp, outcome)
				}
			}
		default:
			failed++
			fmt.Printf("job %s: cluster %s %s: %s\n", j.ID, j.Cluster, j.State, j.Error)
		}
	}
	// A bucket the planner never promoted is a cluster that silently got
	// no repository — in batch mode (MinPages 2) that means truth.json
	// does not cover it. Single-page buckets (index pages and other
	// strays) are reported but do not fail the run.
	for _, info := range eng.Buffer().Buckets() {
		if info.JobID != "" {
			continue
		}
		if info.Pages < 2 {
			fmt.Printf("bucket %s: cluster %s (%d page) skipped as a stray\n",
				info.ID, info.Name, info.Pages)
			continue
		}
		failed++
		fmt.Printf("bucket %s: cluster %s (%d pages) NOT induced: fewer than 2 pages covered by truth.json\n",
			info.ID, info.Name, info.Pages)
	}
	if failed > 0 {
		return fmt.Errorf("%d cluster(s) did not stage a repository", failed)
	}
	return nil
}
