// Command benchguard compares one benchmark's ns/op between two `go test
// -json` streams and fails when the current run regresses past a
// threshold — the CI tripwire that keeps the extraction hot path from
// quietly slowing down across PRs.
//
// Usage:
//
//	benchguard -baseline BENCH_pr3.json -current /tmp/bench.json \
//	    -bench BenchmarkExtractPage -max-regress 0.30
//
// Both inputs are test2json streams (concatenations of several runs are
// fine — every line is independent). When a benchmark appears several
// times (-count > 1), the minimum ns/op is used on both sides, which
// damps scheduler noise. A missing benchmark in either stream is an
// error: a silently skipped guard is worse than a failing one.
//
// The committed baseline and the fresh run usually come from different
// machines (a dev box vs. a CI runner), so -ref names a second, stable
// benchmark present in both streams that is used as a speed yardstick:
// the guard then compares the *ratio* bench/ref across the two runs,
// cancelling raw hardware delta to first order. An empty -ref compares
// absolute ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// minNsPerOp extracts the minimum ns/op recorded for bench in a test2json
// stream. Benchmark result lines surface as output events shaped like
// "BenchmarkExtractPage  1340  1646351 ns/op  266316 B/op  6492 allocs/op",
// but test2json may split one line across several events (the name flushes
// before the timing is appended), so output is reassembled per
// package/test before scanning for result lines.
func minNsPerOp(path, bench string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	streams := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise between concatenated streams
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "/" + ev.Test
		b, ok := streams[key]
		if !ok {
			b = &strings.Builder{}
			streams[key] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	best := 0.0
	found := false
	for _, b := range streams {
		for _, line := range strings.Split(b.String(), "\n") {
			ns, ok := parseBenchLine(line, bench)
			if !ok {
				continue
			}
			if !found || ns < best {
				best, found = ns, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("benchmark %q not found in %s", bench, path)
	}
	return best, nil
}

// parseBenchLine pulls ns/op out of one benchmark output line when it
// reports the wanted benchmark (GOMAXPROCS suffixes like -8 match too).
func parseBenchLine(line, bench string) (float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return 0, false
	}
	name := fields[0]
	if name != bench && !strings.HasPrefix(name, bench+"-") {
		return 0, false
	}
	for i := 2; i < len(fields); i++ {
		if fields[i] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return 0, false
		}
		return ns, true
	}
	return 0, false
}

func main() {
	baseline := flag.String("baseline", "", "committed test2json stream (the trusted numbers)")
	current := flag.String("current", "", "fresh test2json stream to check")
	bench := flag.String("bench", "BenchmarkExtractPage", "benchmark name to compare")
	ref := flag.String("ref", "", "reference benchmark used to normalize machine speed (empty: compare absolute ns/op)")
	maxRegress := flag.Float64("max-regress", 0.30, "allowed fractional ns/op regression")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	mustMin := func(path, name string) float64 {
		ns, err := minNsPerOp(path, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		return ns
	}
	base := mustMin(*baseline, *bench)
	cur := mustMin(*current, *bench)
	fmt.Printf("%s: baseline %.0f ns/op, current %.0f ns/op\n", *bench, base, cur)
	baseScore, curScore := base, cur
	if *ref != "" {
		baseRef := mustMin(*baseline, *ref)
		curRef := mustMin(*current, *ref)
		fmt.Printf("%s (speed yardstick): baseline %.0f ns/op, current %.0f ns/op\n",
			*ref, baseRef, curRef)
		baseScore, curScore = base/baseRef, cur/curRef
	}
	change := (curScore - baseScore) / baseScore
	fmt.Printf("normalized change: %+.1f%%\n", change*100)
	if change > *maxRegress {
		fmt.Fprintf(os.Stderr,
			"benchguard: %s regressed %.1f%% > allowed %.1f%% — commit with [bench-skip] if intentional\n",
			*bench, change*100, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: within threshold")
}
