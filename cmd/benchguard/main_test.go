package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line, bench string
		want        float64
		ok          bool
	}{
		{"BenchmarkExtractPage \t 1340\t 1646351 ns/op\t 266316 B/op\t 6492 allocs/op\n", "BenchmarkExtractPage", 1646351, true},
		{"BenchmarkExtractPage-8 \t 42883\t 56477 ns/op\n", "BenchmarkExtractPage", 56477, true},
		{"BenchmarkExtractPageCache \t 10\t 99 ns/op\n", "BenchmarkExtractPage", 0, false},
		{"goos: linux\n", "BenchmarkExtractPage", 0, false},
		{"BenchmarkExtractPage \t 5\t no-number ns/op\n", "BenchmarkExtractPage", 0, false},
	}
	for _, c := range cases {
		got, ok := parseBenchLine(c.line, c.bench)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseBenchLine(%q) = %v,%v want %v,%v", c.line, got, ok, c.want, c.ok)
		}
	}
}

func TestMinNsPerOpPicksMinimumAcrossRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	// The second record is split across two output events, the way
	// test2json flushes the benchmark name before the timing.
	stream := `{"Action":"output","Package":"repro","Test":"BenchmarkExtractPage","Output":"BenchmarkExtractPage \t 10\t 900 ns/op\n"}
not-json-noise-between-streams
{"Action":"output","Package":"repro","Test":"BenchmarkExtractPage","Output":"BenchmarkExtractPage-8            \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkExtractPage","Output":"       10\t     700 ns/op\t   17800 B/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkOther","Output":"BenchmarkOther \t 10\t 5 ns/op\n"}
{"Action":"run","Test":"TestX"}
`
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := minNsPerOp(path, "BenchmarkExtractPage")
	if err != nil {
		t.Fatal(err)
	}
	if got != 700 {
		t.Fatalf("min = %v, want 700", got)
	}
	if _, err := minNsPerOp(path, "BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark should error")
	}
}
