// Command clusterpages runs step (1) of the paper's pipeline on a pages
// directory: it partitions the pages into page clusters by URL pattern,
// tag structure and keyword similarity, and writes one sub-directory per
// cluster (each a valid -site input for retrozilla).
//
// Usage:
//
//	clusterpages -pages ./pages -out ./clusters [-threshold 0.65]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dom"
)

func main() {
	pagesDir := flag.String("pages", "", "pages directory (from crawl or sitegen)")
	out := flag.String("out", "clusters", "output directory")
	threshold := flag.Float64("threshold", 0, "similarity threshold (0 = default)")
	flag.Parse()
	if *pagesDir == "" {
		fmt.Fprintln(os.Stderr, "clusterpages: -pages is required")
		os.Exit(2)
	}
	if err := run(*pagesDir, *out, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "clusterpages:", err)
		os.Exit(1)
	}
}

func run(pagesDir, out string, threshold float64) error {
	pages, err := loadPages(pagesDir)
	if err != nil {
		return err
	}
	infos := make([]cluster.PageInfo, len(pages))
	for i, p := range pages {
		infos[i] = cluster.PageInfo{URI: p.URI, Doc: p.Doc}
	}
	cfg := cluster.DefaultConfig()
	if threshold > 0 {
		cfg.Threshold = threshold
	}
	results := cluster.ClusterPages(infos, cfg)
	for _, r := range results {
		dir := filepath.Join(out, r.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		man := struct {
			Cluster string            `json:"cluster"`
			Pages   map[string]string `json:"pages"`
		}{Cluster: sanitizeName(r.Name), Pages: map[string]string{}}
		for i, idx := range r.Pages {
			file := fmt.Sprintf("page%03d.html", i)
			if err := os.WriteFile(filepath.Join(dir, file),
				[]byte(dom.Render(pages[idx].Doc)), 0o644); err != nil {
				return err
			}
			man.Pages[pages[idx].URI] = file
		}
		data, err := json.MarshalIndent(man, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "pages.json"),
			append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("cluster %-30s %3d pages -> %s\n", r.Name, len(r.Pages), dir)
	}
	return nil
}

// sanitizeName makes the cluster name a valid rule-repository cluster
// name (letters first, limited charset).
func sanitizeName(name string) string {
	outRunes := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			outRunes = append(outRunes, r)
		}
	}
	if len(outRunes) == 0 || !isLetter(outRunes[0]) {
		return "cluster-" + string(outRunes)
	}
	return string(outRunes)
}

func isLetter(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

func loadPages(dir string) ([]*core.Page, error) {
	data, err := os.ReadFile(filepath.Join(dir, "pages.json"))
	if err != nil {
		return nil, err
	}
	var man struct {
		Pages map[string]string `json:"pages"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, err
	}
	uris := make([]string, 0, len(man.Pages))
	for uri := range man.Pages {
		uris = append(uris, uri)
	}
	sort.Slice(uris, func(i, j int) bool { return man.Pages[uris[i]] < man.Pages[uris[j]] })
	var pages []*core.Page
	for _, uri := range uris {
		html, err := os.ReadFile(filepath.Join(dir, man.Pages[uri]))
		if err != nil {
			return nil, err
		}
		pages = append(pages, core.NewPage(uri, string(html)))
	}
	return pages, nil
}
