package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dom"
)

func TestClusterPagesRun(t *testing.T) {
	dir := t.TempDir()
	pagesDir := filepath.Join(dir, "pages")
	if err := os.MkdirAll(pagesDir, 0o755); err != nil {
		t.Fatal(err)
	}
	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(1, 8))
	stocks := corpus.GenerateStocks(corpus.DefaultStockProfile(2, 8))
	man := struct {
		Cluster string            `json:"cluster"`
		Pages   map[string]string `json:"pages"`
	}{Cluster: "crawled", Pages: map[string]string{}}
	i := 0
	for _, cl := range []*corpus.Cluster{movies, stocks} {
		for _, p := range cl.Pages {
			file := fmt.Sprintf("page%03d.html", i)
			i++
			if err := os.WriteFile(filepath.Join(pagesDir, file),
				[]byte(dom.Render(p.Doc)), 0o644); err != nil {
				t.Fatal(err)
			}
			man.Pages[p.URI] = file
		}
	}
	data, _ := json.MarshalIndent(man, "", "  ")
	if err := os.WriteFile(filepath.Join(pagesDir, "pages.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "clusters")
	if err := run(pagesDir, out, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("clusters = %v, want 2", names)
	}
	// Each cluster dir must be a loadable site.
	for _, e := range entries {
		manPath := filepath.Join(out, e.Name(), "pages.json")
		if _, err := os.Stat(manPath); err != nil {
			t.Errorf("cluster %s missing pages.json", e.Name())
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"movies-example-title": "movies-example-title",
		"9weird":               "cluster-9weird",
		"has space":            "hasspace",
		"":                     "cluster-",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
