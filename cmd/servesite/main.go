// Command servesite serves a synthetic multi-cluster site over HTTP —
// the live "Web site" of Figure 1, useful for demonstrating the crawl →
// cluster → analyze → extract pipeline end to end against a real server.
//
// Usage:
//
//	servesite -addr :8080 -pages 30 -seed 42
//	crawl    -url http://localhost:8080/ -out ./pages
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/corpus"
	"repro/internal/webfetch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pages := flag.Int("pages", 30, "pages per cluster")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	h, err := webfetch.NewSiteHandler(
		corpus.GenerateMovies(corpus.DefaultMovieProfile(*seed, *pages)),
		corpus.GenerateBooks(corpus.DefaultBookProfile(*seed+1, *pages)),
		corpus.GenerateStocks(corpus.DefaultStockProfile(*seed+2, *pages)),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesite:", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d pages on %s (index at /)\n", h.PageCount(), *addr)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, "servesite:", err)
		os.Exit(1)
	}
}
