// Command servesite serves a synthetic multi-cluster site over HTTP —
// the live "Web site" of Figure 1, useful for demonstrating the crawl →
// cluster → analyze → extract pipeline end to end against a real server.
//
// Usage:
//
//	servesite -addr :8080 -pages 30 -seed 42
//	crawl    -url http://localhost:8080/ -out ./pages
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/webfetch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pages := flag.Int("pages", 30, "pages per cluster")
	seed := flag.Int64("seed", 42, "generator seed")
	drift := flag.String("drift", "",
		"simulate page evolution before serving: component[:remove|duplicate|relabel] (movies cluster)")
	flag.Parse()

	h, clusters, err := webfetch.DefaultSite(*seed, *pages)
	if err == nil && *drift != "" {
		err = applyDrift(h, clusters[0], *drift, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesite:", err)
		os.Exit(1)
	}
	fmt.Printf("serving %d pages on %s (index at /)\n", h.PageCount(), *addr)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, "servesite:", err)
		os.Exit(1)
	}
}

// applyDrift mutates the served pages before startup — the local way to
// exercise extractd's drift detection and repair against a "evolved"
// site without editing any HTML by hand.
func applyDrift(h *webfetch.SiteHandler, cl *corpus.Cluster, spec string, seed int64) error {
	component, kindName := spec, "relabel"
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		component, kindName = spec[:i], spec[i+1:]
	}
	var kind corpus.DriftKind
	switch kindName {
	case "remove":
		kind = corpus.DriftRemoveMandatory
	case "duplicate":
		kind = corpus.DriftDuplicateValue
	case "relabel":
		kind = corpus.DriftRelabel
	default:
		return fmt.Errorf("unknown drift kind %q", kindName)
	}
	pages, drifts := corpus.InjectDrift(cl, component, kind, 1.0, seed)
	if len(drifts) == 0 {
		return fmt.Errorf("drift %q did not apply to any page (unknown component?)", spec)
	}
	if err := h.SetPages(pages); err != nil {
		return err
	}
	fmt.Printf("injected %s drift on %q into %d pages\n", kindName, component, len(drifts))
	return nil
}
