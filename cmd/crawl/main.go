// Command crawl gathers the pages of a live site — the "Web site" input
// arrow of Figure 1 — as one pipeline run: a streaming crawl source into
// a pages-directory sink (pages.json + HTML files, compatible with
// clusterpages, retrozilla and extract), or, with -ndjson, into NDJSON
// page lines on stdout ready to pipe into extractd's POST /ingest.
//
// Usage:
//
//	crawl -url http://host/ -out ./pages -max 200
//	crawl -url http://host/ -ndjson | curl -s -N --data-binary @- 'http://localhost:8090/ingest'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/pipeline"
	"repro/internal/webfetch"
)

func main() {
	start := flag.String("url", "", "start URL")
	out := flag.String("out", "pages", "output directory")
	max := flag.Int("max", 200, "maximum pages")
	delay := flag.Duration("delay", 0, "delay between requests (e.g. 100ms)")
	ndjson := flag.Bool("ndjson", false, "write NDJSON page lines to stdout instead of a directory")
	timeout := flag.Duration("timeout", 0, "per-request timeout (default 15s)")
	flag.Parse()
	if *start == "" {
		fmt.Fprintln(os.Stderr, "crawl: -url is required")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *start, *out, *max, *delay, *timeout, *ndjson); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, start, out string, max int, delay, timeout time.Duration, ndjson bool) error {
	f := &webfetch.Fetcher{MaxPages: max, Delay: delay, Timeout: timeout}
	src, err := f.Start(start)
	if err != nil {
		return err
	}
	if ndjson {
		_, err := pipeline.Run(ctx, pipeline.Config{Workers: 1}, src,
			pipeline.NewPageNDJSONSink(os.Stdout))
		return err
	}
	sink, err := pipeline.NewPagesDirSink(out, "crawled")
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(ctx, pipeline.Config{Workers: 1}, src, sink); err != nil {
		return err
	}
	fmt.Printf("crawled %d page(s) -> %s\n", sink.PageCount(), out)
	return nil
}
