// Command crawl gathers the pages of a live site into a pages directory
// compatible with the retrozilla and extract commands (pages.json + HTML
// files, no ground truth). This is the "Web site" input arrow of
// Figure 1.
//
// Usage:
//
//	crawl -url http://host/ -out ./pages -max 200
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dom"
	"repro/internal/webfetch"
)

func main() {
	start := flag.String("url", "", "start URL")
	out := flag.String("out", "pages", "output directory")
	max := flag.Int("max", 200, "maximum pages")
	delay := flag.Duration("delay", 0, "delay between requests (e.g. 100ms)")
	flag.Parse()
	if *start == "" {
		fmt.Fprintln(os.Stderr, "crawl: -url is required")
		os.Exit(2)
	}
	f := &webfetch.Fetcher{MaxPages: *max, Delay: *delay}
	pages, err := f.Crawl(*start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	man := struct {
		Cluster string            `json:"cluster"`
		Pages   map[string]string `json:"pages"`
	}{Cluster: "crawled", Pages: map[string]string{}}
	for i, p := range pages {
		file := fmt.Sprintf("page%03d.html", i)
		if err := os.WriteFile(filepath.Join(*out, file),
			[]byte(dom.Render(p.Doc)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crawl:", err)
			os.Exit(1)
		}
		man.Pages[p.URI] = file
	}
	data, _ := json.MarshalIndent(man, "", "  ")
	if err := os.WriteFile(filepath.Join(*out, "pages.json"), append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
	fmt.Printf("crawled %d page(s) -> %s\n", len(pages), *out)
}
