// Benchmark harness: one benchmark per paper artifact (tables, figures,
// claim studies — see DESIGN.md §4) plus micro-benchmarks for the
// substrates and ablation benches for the design choices DESIGN.md §5
// calls out. Shape assertions run inside the benchmarks so a regression
// in an experiment's qualitative outcome fails the bench run, not just
// changes a number.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dom"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/pipeline"
	"repro/internal/rule"
	"repro/internal/service"
	"repro/internal/textutil"
	"repro/internal/xpath"
)

// ---------------------------------------------------------------------------
// Paper artifacts (one bench per table/figure).

// BenchmarkPipelineEndToEnd regenerates Figure 1: cluster a mixed site,
// induce rules per cluster, extract XML.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigureOnePipeline()
		if r.Metrics["pureClusters"] < r.Metrics["clusters"] {
			b.Fatalf("impure clusters: %v", r.Metrics)
		}
		if r.Metrics["componentsOK"] < r.Metrics["componentsTotal"] {
			b.Fatalf("non-converged components: %v", r.Metrics)
		}
	}
}

// BenchmarkCandidateRuleCheck regenerates Table 1 and asserts the exact
// verdict pattern (2 hits, 1 unexpected, 1 void).
func BenchmarkCandidateRuleCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableOneCandidateCheck()
		if r.Metrics["match"] != 2 || r.Metrics["unexpected"] != 1 || r.Metrics["void"] != 1 {
			b.Fatalf("Table 1 pattern broken: %v", r.Metrics)
		}
	}
}

// BenchmarkXPathTable2 regenerates Table 2 and asserts each shape's
// selection count (a,b,e: 1 node; c: 1 row; d: 3 rows; f: void).
func BenchmarkXPathTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableTwoXPathShapes()
		want := map[string]float64{
			"count_a": 1, "count_b": 1, "count_c": 1,
			"count_d": 3, "count_e": 1, "count_f": 0,
		}
		for k, v := range want {
			if r.Metrics[k] != v {
				b.Fatalf("Table 2 row %s: got %v, want %v", k, r.Metrics[k], v)
			}
		}
	}
}

// BenchmarkRuleRefinement regenerates Table 3 and asserts all four pages
// match after contextual refinement.
func BenchmarkRuleRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableThreeRefined()
		if r.Metrics["matches"] != r.Metrics["pages"] || r.Metrics["converged"] != 1 {
			b.Fatalf("Table 3 refinement broken: %v", r.Metrics)
		}
	}
}

// BenchmarkBuildScenario regenerates Figure 3 (the full build scenario
// over all components) and asserts convergence.
func BenchmarkBuildScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigureThreeScenario()
		if r.Metrics["converged"] != r.Metrics["total"] {
			b.Fatalf("Figure 3 scenario: %v", r.Metrics)
		}
	}
}

// BenchmarkXMLExtraction regenerates Figure 5 and asserts the three-level
// structure (4 page elements, no failures).
func BenchmarkXMLExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FigureFiveXML()
		if r.Metrics["pages"] != 4 || r.Metrics["failures"] != 0 {
			b.Fatalf("Figure 5 broken: %v", r.Metrics)
		}
	}
}

// BenchmarkSchemaGeneration regenerates the §4 schema + enhanced
// structure and asserts conformance.
func BenchmarkSchemaGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SchemaGeneration()
		if r.Metrics["violations"] != 0 {
			b.Fatalf("schema conformance: %v", r.Metrics)
		}
	}
}

// BenchmarkConvergence regenerates E-CONV and asserts the shape: steep
// rise, ≥0.9 by k=5, ≥0.95 by k=10, and the no-context ablation at k=10
// below the full stack.
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Convergence()
		if r.Metrics["f1_k5"] < 0.85 || r.Metrics["f1_k10"] < 0.95 {
			b.Fatalf("convergence shape broken: %v", r.Metrics)
		}
		if r.Metrics["f1_k10_noctx"] > r.Metrics["f1_k10"] {
			b.Fatalf("ablation should not beat full stack: %v", r.Metrics)
		}
	}
}

// BenchmarkBaselineComparison regenerates E-BASE and asserts the §6
// positioning: semi-automated precision ≈ 1 and far above the automatic
// baseline, which emits a larger volume.
func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.BaselineComparison()
		for _, cl := range []string{"movies", "books", "stocks"} {
			if r.Metrics[cl+"_semiP"] < 0.99 {
				b.Fatalf("%s semi precision: %v", cl, r.Metrics)
			}
			if r.Metrics[cl+"_autoP"] > r.Metrics[cl+"_semiP"]-0.2 {
				b.Fatalf("%s automatic precision unexpectedly close: %v", cl, r.Metrics)
			}
			if r.Metrics[cl+"_autoVol"] <= r.Metrics[cl+"_semiVol"] {
				b.Fatalf("%s automatic volume should exceed targeted volume: %v", cl, r.Metrics)
			}
		}
	}
}

// BenchmarkNestingDepth regenerates E-NEST and asserts the §7 claim:
// positional-only rules are weaker on flat layouts than on fine-grained
// ones.
func BenchmarkNestingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NestingDepth()
		if r.Metrics["flat_pos"] >= r.Metrics["fine0_pos"] {
			b.Fatalf("nesting claim broken: %v", r.Metrics)
		}
		if r.Metrics["flat_full"] < 0.95 {
			b.Fatalf("full stack should stay strong on flat: %v", r.Metrics)
		}
	}
}

// BenchmarkFailureDetection regenerates E-FAIL and asserts that label
// removals and relabelings are detected reliably.
func BenchmarkFailureDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FailureDetection()
		if r.Metrics["remove-mandatory_rating"] < 0.9 {
			b.Fatalf("removal detection: %v", r.Metrics)
		}
		if r.Metrics["relabel_runtime"] < 0.9 {
			b.Fatalf("relabel detection: %v", r.Metrics)
		}
		if r.Metrics["duplicate-value_runtime"] < 0.9 {
			b.Fatalf("duplicate detection: %v", r.Metrics)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

var benchHTML = func() string {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(1, 1))
	return dom.Render(cl.Pages[0].Doc)
}()

func BenchmarkHTMLParse(b *testing.B) {
	b.SetBytes(int64(len(benchHTML)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := dom.Parse(benchHTML)
		if doc == nil {
			b.Fatal("nil doc")
		}
	}
}

func BenchmarkHTMLRender(b *testing.B) {
	doc := dom.Parse(benchHTML)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dom.Render(doc) == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkXPathCompile(b *testing.B) {
	const expr = `BODY//TR[6]/TD[1]/text()[preceding::text()[1][contains(., "Runtime:")]]`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Compile(expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXPathEvalPositional(b *testing.B) {
	doc := dom.Parse(benchHTML)
	c := xpath.MustCompile("BODY//TABLE[1]/TR[6]/TD[1]/text()[1]")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SelectLocation(doc)
	}
}

func BenchmarkXPathEvalContextual(b *testing.B) {
	doc := dom.Parse(benchHTML)
	c := xpath.MustCompile(`BODY//text()[preceding::text()[1][contains(., "Runtime:")]]`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.SelectLocation(doc)
	}
}

// BenchmarkCompareDocumentOrder measures the document-order comparison the
// evaluator leans on when sorting and deduplicating node-sets — an O(1)
// stamp compare on parsed trees since PR 3.
func BenchmarkCompareDocumentOrder(b *testing.B) {
	doc := dom.Parse(benchHTML)
	var nodes []*dom.Node
	dom.Walk(doc, func(n *dom.Node) bool {
		nodes = append(nodes, n)
		return true
	})
	if len(nodes) < 2 {
		b.Fatal("tiny tree")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := nodes[i%len(nodes)]
		y := nodes[(i*7+3)%len(nodes)]
		dom.CompareDocumentOrder(x, y)
	}
}

// BenchmarkSelectLocationFastPath measures the zero-allocation compiled
// child-path walker on the canonical positional location of a real corpus
// node (BODY[..]/…/text()[k]).
func BenchmarkSelectLocationFastPath(b *testing.B) {
	doc := dom.Parse(benchHTML)
	target := dom.FindFirst(dom.Body(doc), func(n *dom.Node) bool {
		return n.Type == dom.TextNode && n.Parent.TagIs("TD")
	})
	if target == nil {
		b.Fatal("no table text node in bench page")
	}
	path, ok := core.PathTo(target)
	if !ok {
		b.Fatal("no positional path to target")
	}
	c := xpath.MustCompile(path.String())
	if !c.IsFastPath() {
		b.Fatalf("%s did not compile to the fast path", path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.SelectLocationFirst(doc) != target {
			b.Fatal("fast path missed the target")
		}
	}
}

// BenchmarkExtractdPageCache measures the service's content-addressed
// page cache on its hit path (hash + LRU probe) against the dom.Parse it
// saves — the per-request cost of re-posting an already-seen body.
func BenchmarkExtractdPageCache(b *testing.B) {
	cache := service.NewPageCache(64)
	body := []byte(benchHTML)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := service.PageKeyOf(body)
		doc, ok := cache.Get(key)
		if !ok {
			doc = dom.Parse(string(body))
			cache.Put(key, doc, int64(len(body)))
		}
		if doc == nil {
			b.Fatal("nil document")
		}
	}
}

func BenchmarkInduceRule(b *testing.B) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 30))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := builder.BuildRule("runtime")
		if err != nil || !res.OK {
			b.Fatalf("induction failed: %v %v", err, res.Actions)
		}
	}
}

func BenchmarkExtractPage(b *testing.B) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 30))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		b.Fatal(err)
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		b.Fatal(err)
	}
	page := cl.Pages[len(cl.Pages)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, _ := proc.ExtractPage(page)
		if len(el.Children) == 0 {
			b.Fatal("empty extraction")
		}
	}
}

// BenchmarkExtractdThroughput measures the online-extraction hot path of
// the extractd service: pages/sec through the bounded worker pool against
// a hot-loaded movies-corpus repository, with metrics accounting enabled
// — the number a capacity plan for the daemon starts from.
func BenchmarkExtractdThroughput(b *testing.B) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 30))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		b.Fatal(err)
	}
	reg := service.NewRegistry()
	entry, err := reg.Load("", repo)
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	pool := service.NewPool(workers, 4*workers)
	defer pool.Close()
	metrics := service.NewMetrics()

	var idx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			page := cl.Pages[int(idx.Add(1))%len(cl.Pages)]
			var el *extract.Element
			var fails []extract.Failure
			t0 := time.Now()
			err := pool.Do(context.Background(), func() {
				el, fails = entry.Proc.ExtractPage(page)
			})
			if err != nil {
				b.Fatal(err)
			}
			metrics.Extraction(time.Since(t0), fails)
			if len(el.Children) == 0 {
				b.Fatal("empty extraction")
			}
		}
	})
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "pages/sec")
	}
	if snap := metrics.Snapshot(); snap.PagesExtracted != int64(b.N) {
		b.Fatalf("metrics counted %d pages, ran %d", snap.PagesExtracted, b.N)
	}
}

// BenchmarkIngestSite measures whole-site ingestion throughput through
// the streaming pipeline: every page arrives as raw HTML (the way POST
// /ingest receives a site migration), is signature-routed off its token
// stream and extracted by the compiled rule automaton — no DOM is built
// on the hot path since PR 9. Reports pages/sec.
func BenchmarkIngestSite(b *testing.B) {
	clusters := []*corpus.Cluster{
		corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 20)),
		corpus.GenerateBooks(corpus.DefaultBookProfile(10, 20)),
	}
	router := cluster.NewRouter(0)
	repos := map[string]*rule.Repository{}
	var uris, htmls []string
	for _, cl := range clusters {
		sample, _ := cl.RepresentativeSplit(10)
		builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
		repo := rule.NewRepository(cl.Name)
		if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
			b.Fatal(err)
		}
		repos[cl.Name] = repo
		var infos []cluster.PageInfo
		for _, p := range cl.Pages {
			infos = append(infos, cluster.PageInfo{URI: p.URI, Doc: p.Doc})
			uris = append(uris, p.URI)
			htmls = append(htmls, dom.Render(p.Doc))
		}
		router.Register(cl.Name, cluster.SignatureOf(infos))
	}
	ex, err := pipeline.NewStaticExtractor(repos)
	if err != nil {
		b.Fatal(err)
	}

	// Cycle the corpus to fill b.N pages. Each item is a fresh lazy page
	// over the raw markup, exactly what the ingest handler constructs.
	stream := make([]*core.Page, b.N)
	for i := range stream {
		stream[i] = core.NewPageLazy(uris[i%len(uris)], htmls[i%len(htmls)])
	}
	var extracted, unrouted int
	sink := pipeline.FuncSink(func(it *pipeline.Item) error {
		if it.Element != nil {
			extracted++
		} else {
			unrouted++
		}
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	// Telemetry on, as in production: the benchmark guards the
	// instrumented path, so per-stage instrumentation cost shows up
	// as an ingest regression.
	stats, err := pipeline.Run(context.Background(), pipeline.Config{
		Classifier: pipeline.RouteWith(router),
		Extractor:  ex,
		Telemetry:  pipeline.NewTelemetry(),
	}, pipeline.NewPageSource(stream), sink)
	if err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "pages/sec")
	}
	if stats.Pages != b.N || extracted != b.N {
		b.Fatalf("ingested %d/%d pages, %d unrouted — routing broke", extracted, b.N, unrouted)
	}
}

// BenchmarkStreamExtract measures the PR 9 tentpole in isolation:
// one page of raw HTML through the compiled rule automaton — tokenize,
// match, capture, assemble — with no tree ever built. Compare against
// BenchmarkExtractPage (DOM evaluation of an already-parsed page) plus
// BenchmarkHTMLParse (the parse the stream path skips) for the full
// hot-path story.
func BenchmarkStreamExtract(b *testing.B) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 30))
	sample, _ := cl.RepresentativeSplit(10)
	builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
	repo := rule.NewRepository(cl.Name)
	if _, err := builder.BuildAll(repo, cl.ComponentNames()); err != nil {
		b.Fatal(err)
	}
	proc, err := extract.NewProcessor(repo)
	if err != nil {
		b.Fatal(err)
	}
	proc.Freeze()
	page := cl.Pages[len(cl.Pages)-1]
	html := dom.Render(page.Doc)
	b.SetBytes(int64(len(html)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, _, info := proc.ExtractPageStream(page.URI, html)
		if !info.Hit {
			b.Fatalf("stream path not taken: %s", info.Reason)
		}
		if len(el.Children) == 0 {
			b.Fatal("empty extraction")
		}
	}
}

func BenchmarkBaselineInduce(b *testing.B) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(9, 10))
	var docs []*dom.Node
	for _, p := range cl.Pages {
		docs = append(docs, p.Doc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Induce(docs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterPages(b *testing.B) {
	movies := corpus.GenerateMovies(corpus.DefaultMovieProfile(1, 30))
	books := corpus.GenerateBooks(corpus.DefaultBookProfile(2, 30))
	var pages []cluster.PageInfo
	for i := 0; i < 30; i++ {
		pages = append(pages,
			cluster.PageInfo{URI: movies.Pages[i].URI, Doc: movies.Pages[i].Doc},
			cluster.PageInfo{URI: books.Pages[i].URI, Doc: books.Pages[i].Doc})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := cluster.ClusterPages(pages, cluster.DefaultConfig())
		if len(rs) < 2 {
			b.Fatalf("clusters = %d", len(rs))
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §5): refinement strategies on/off. Each
// reports held-out F1 as a custom metric alongside build time.

func benchAblation(b *testing.B, configure func(*core.Builder)) {
	cl := corpus.GenerateMovies(corpus.DefaultMovieProfile(555, 60))
	sample, held := cl.RepresentativeSplit(10)
	var lastF1 float64
	for i := 0; i < b.N; i++ {
		builder := &core.Builder{Sample: sample, Oracle: cl.Oracle()}
		configure(builder)
		repo := rule.NewRepository(cl.Name)
		for _, comp := range cl.ComponentNames() {
			res, err := builder.BuildRule(comp)
			if err != nil {
				b.Fatal(err)
			}
			if res.Rule.Validate() == nil {
				_ = repo.Record(res.Rule)
			}
		}
		compiled, err := repo.CompileAll()
		if err != nil {
			b.Fatal(err)
		}
		correct, total := 0, 0
		for _, p := range held {
			for name, c := range compiled {
				var got []string
				for _, n := range c.Apply(p.Doc) {
					got = append(got, normalizeBench(n))
				}
				want := cl.TruthStrings(p, name)
				total++
				if fmt.Sprint(got) == fmt.Sprint(want) {
					correct++
				}
			}
		}
		lastF1 = float64(correct) / float64(total)
	}
	b.ReportMetric(lastF1, "heldout-acc")
}

func normalizeBench(n *dom.Node) string {
	return textutil.NormalizeSpace(xpath.NodeStringValue(n))
}

func BenchmarkAblationFullStack(b *testing.B) {
	benchAblation(b, func(*core.Builder) {})
}

func BenchmarkAblationNoContext(b *testing.B) {
	benchAblation(b, func(bu *core.Builder) { bu.DisableContext = true })
}

func BenchmarkAblationNoAltPaths(b *testing.B) {
	benchAblation(b, func(bu *core.Builder) { bu.DisableAltPaths = true })
}

func BenchmarkAblationPositionalOnly(b *testing.B) {
	benchAblation(b, func(bu *core.Builder) {
		bu.DisableContext = true
		bu.DisableAltPaths = true
	})
}
